package faults

import (
	"reflect"
	"strings"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/disk"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

func secs(s float64) simtime.Duration { return simtime.Duration(s * float64(simtime.Second)) }

func TestGenerateDeterministic(t *testing.T) {
	kinds := []Kind{DiskDegrade, DiskStall, DiskMediaErrors, IRQStorm, TimerJitter, PriorityInversion, CachePressure}
	a := Generate(42, secs(60), kinds...)
	b := Generate(42, secs(60), kinds...)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\nvs\n%v", a, b)
	}
	c := Generate(43, secs(60), kinds...)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatalf("different seeds produced identical plans")
	}
	if len(a.Faults) != len(kinds) {
		t.Fatalf("plan has %d faults, want %d", len(a.Faults), len(kinds))
	}
	for _, f := range a.Faults {
		if f.Start <= 0 || f.Duration <= 0 {
			t.Fatalf("fault %v has non-positive window", f)
		}
		if f.End() > simtime.Time(secs(60)) {
			t.Fatalf("fault %v runs past the span", f)
		}
	}
}

// A kind's window depends only on (seed, kind): adding kinds to a plan
// must not move the windows of the kinds already there.
func TestGenerateKindsIndependent(t *testing.T) {
	solo := Generate(7, secs(60), DiskDegrade)
	both := Generate(7, secs(60), DiskDegrade, IRQStorm)
	var fromBoth Fault
	for _, f := range both.Faults {
		if f.Kind == DiskDegrade {
			fromBoth = f
		}
	}
	if solo.Faults[0] != fromBoth {
		t.Fatalf("DiskDegrade window moved when IRQStorm joined the plan: %v vs %v", solo.Faults[0], fromBoth)
	}
}

func TestFaultActiveAndStrings(t *testing.T) {
	f := Fault{Kind: DiskDegrade, Start: simtime.Time(secs(5)), Duration: secs(2), Magnitude: 4}
	if f.Active(simtime.Time(secs(4.9))) || !f.Active(simtime.Time(secs(5))) ||
		!f.Active(simtime.Time(secs(6.9))) || f.Active(f.End()) {
		t.Fatalf("Active window boundaries wrong for %v", f)
	}
	if !strings.Contains(f.String(), "disk-degrade") {
		t.Fatalf("Fault.String %q missing kind", f.String())
	}
	if (Plan{}).String() != "(no faults)" {
		t.Fatalf("empty plan renders %q", (Plan{}).String())
	}
	p := Generate(1, secs(10), DiskStall, CachePressure)
	if got := p.String(); !strings.Contains(got, "disk-stall") || !strings.Contains(got, "cache-pressure") {
		t.Fatalf("plan render missing kinds:\n%s", got)
	}
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestClockDiskFaultModel(t *testing.T) {
	plan := Plan{Seed: 9, Faults: []Fault{
		{Kind: DiskDegrade, Start: simtime.Time(secs(1)), Duration: secs(1), Magnitude: 5},
		{Kind: DiskStall, Start: simtime.Time(secs(3)), Duration: secs(1)},
		{Kind: DiskMediaErrors, Start: simtime.Time(secs(5)), Duration: secs(1), Magnitude: 1},
	}}
	c := NewClock(plan)
	if got := c.ServiceFactor(simtime.Time(secs(1.5))); got != 5 {
		t.Fatalf("ServiceFactor in window = %v, want 5", got)
	}
	if got := c.ServiceFactor(simtime.Time(secs(2.5))); got != 1 {
		t.Fatalf("ServiceFactor outside window = %v, want 1", got)
	}
	at := simtime.Time(secs(3.5))
	if got := c.StallUntil(at); got != simtime.Time(secs(4)) {
		t.Fatalf("StallUntil in window = %v, want 4s", got)
	}
	if got := c.StallUntil(simtime.Time(secs(4.5))); got > simtime.Time(secs(4.5)) {
		t.Fatalf("StallUntil outside window = %v, should not stall", got)
	}
	// Magnitude 1 on attempt 0 means probability 1: always fails.
	if !c.AttemptFails(disk.Read, 0, simtime.Time(secs(5.5)), 0) {
		t.Fatalf("AttemptFails with p=1 returned false")
	}
	if c.AttemptFails(disk.Read, 0, simtime.Time(secs(6.5)), 0) {
		t.Fatalf("AttemptFails outside window returned true")
	}
}

// Arm on a live kernel: the storm steals CPU via extra interrupts,
// jitter stretches the tick grid, and pressure evicts resident pages.
func TestArmInjectsKernelFaults(t *testing.T) {
	boot := func(armed bool) *kernel.Kernel {
		k := kernel.New(kernel.DefaultConfig())
		id := k.Cache().AddFile("blob", 0, 400)
		k.At(1, func(simtime.Time) {
			k.Cache().Read(id, 0, 300, func(simtime.Time, error) {})
		})
		if armed {
			plan := Generate(11, secs(10), IRQStorm, TimerJitter, CachePressure)
			NewClock(plan).Arm(Target{K: k})
		}
		k.Run(simtime.Time(secs(12)))
		return k
	}
	clean := boot(false)
	faulty := boot(true)

	cleanIntr := clean.CPU().Count(cpu.Interrupts)
	faultyIntr := faulty.CPU().Count(cpu.Interrupts)
	if faultyIntr < cleanIntr+500 {
		t.Fatalf("storm raised too few interrupts: clean=%d faulty=%d", cleanIntr, faultyIntr)
	}
	if faulty.ClockTicks() >= clean.ClockTicks() {
		t.Fatalf("jitter should slow the tick grid: clean=%d faulty=%d ticks",
			clean.ClockTicks(), faulty.ClockTicks())
	}
	if clean.Cache().ForcedEvictions() != 0 {
		t.Fatalf("clean run saw %d forced evictions", clean.Cache().ForcedEvictions())
	}
	if faulty.Cache().ForcedEvictions() == 0 {
		t.Fatalf("pressure evicted nothing")
	}
}

func TestArmPriorityInversionWindow(t *testing.T) {
	k := kernel.New(kernel.DefaultConfig())
	bg := k.Spawn("bg", kernel.KernelProc, 4, func(tc *kernel.TC) {
		for {
			tc.Sleep(50 * simtime.Millisecond)
		}
	})
	plan := Plan{Seed: 1, Faults: []Fault{
		{Kind: PriorityInversion, Start: simtime.Time(secs(1)), Duration: secs(1)},
	}}
	NewClock(plan).Arm(Target{K: k, Background: bg, BoostPrio: 10})
	k.Run(simtime.Time(secs(1.5)))
	if bg.Priority() != 10 {
		t.Fatalf("inside window priority = %d, want 10", bg.Priority())
	}
	k.Run(simtime.Time(secs(3)))
	if bg.Priority() != 4 {
		t.Fatalf("after window priority = %d, want 4 restored", bg.Priority())
	}
	k.Shutdown()
}

// Two machines armed with the same plan and workload evolve identically.
func TestArmedRunsReproducible(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		k := kernel.New(kernel.DefaultConfig())
		id := k.Cache().AddFile("blob", 0, 400)
		for i := 0; i < 20; i++ {
			at := simtime.Time(secs(0.4 + 0.4*float64(i)))
			k.At(at, func(simtime.Time) {
				k.Cache().EvictAll() // force every read cold
				k.Cache().Read(id, 0, 300, func(simtime.Time, error) {})
			})
		}
		plan := Generate(23, secs(10), DiskDegrade, DiskMediaErrors, IRQStorm, CachePressure)
		NewClock(plan).Arm(Target{K: k})
		k.Run(simtime.Time(secs(12)))
		return k.Disk().Retries(), k.Disk().MediaErrors(), k.IOErrors(), k.CPU().Count(cpu.Interrupts)
	}
	r1, m1, e1, i1 := run()
	r2, m2, e2, i2 := run()
	if r1 != r2 || m1 != m2 || e1 != e2 || i1 != i2 {
		t.Fatalf("armed runs diverged: (%d %d %d %d) vs (%d %d %d %d)", r1, m1, e1, i1, r2, m2, e2, i2)
	}
	if r1 == 0 {
		t.Fatalf("media-error window caused no retries — workload missed the window")
	}
}

// An armed empty plan must be indistinguishable from never constructing
// a Clock at all — this is the guard behind "faults disabled leaves the
// goldens byte-identical".
func TestArmEmptyPlanIsNoOp(t *testing.T) {
	NewClock(Plan{}).Arm(Target{}) // nil kernel tolerated: nothing to install
	run := func(arm bool) (int64, int64, int64, simtime.Time) {
		k := kernel.New(kernel.DefaultConfig())
		id := k.Cache().AddFile("blob", 0, 64)
		k.At(simtime.Time(secs(0.5)), func(simtime.Time) {
			k.Cache().Read(id, 0, 64, func(simtime.Time, error) {})
		})
		if arm {
			NewClock(Plan{}).Arm(Target{K: k})
		}
		k.Run(simtime.Time(secs(2)))
		return k.Disk().Retries(), k.CPU().Count(cpu.Interrupts), k.ClockTicks(), k.Now()
	}
	r0, i0, t0, n0 := run(false)
	r1, i1, t1, n1 := run(true)
	if r0 != r1 || i0 != i1 || t0 != t1 || n0 != n1 {
		t.Fatalf("armed empty plan diverged from unarmed run: (%d %d %d %v) vs (%d %d %d %v)",
			r0, i0, t0, n0, r1, i1, t1, n1)
	}
	if r1 != 0 {
		t.Fatalf("empty plan caused %d disk retries", r1)
	}
}
