// Package faults is the deterministic fault-injection layer of the
// simulated machine. The paper's thesis is that interactive latency is
// dominated by rare, adverse conditions — multi-second PowerPoint disk
// stalls (Table 1), interrupt activity, driver artifacts — not by the
// common case; this package lets experiments *produce* those conditions
// on demand while keeping every run byte-reproducible.
//
// A fault is a (kind, start, duration, magnitude) record. A Plan is a
// set of faults derived from a seed alone (Generate), so the complete
// degradation schedule of a run can be reconstructed — and printed —
// from the seed without storing anything else. A Clock scopes a plan to
// one machine: it answers "which fault of kind K is active at time t"
// and implements disk.FaultModel, and Arm installs the kernel-side
// injections (interrupt storms, timer jitter, priority inversion, cache
// pressure) as ordinary simulator events.
//
// Invariants:
//
//   - Seed-complete. All randomness comes from rng.Source streams
//     salted from Plan.Seed, drawn in simulator order, which is itself
//     deterministic; two machines armed with the same plan and workload
//     produce identical schedules.
//   - Absent means untouched. A nil or empty plan arms nothing and
//     leaves the machine on its exact fault-free code path — goldens
//     recorded without faults stay byte-identical.
//   - Faults degrade, never corrupt. Injection changes timing (stalls,
//     retries, stolen cycles), not simulated data or control flow.
package faults
