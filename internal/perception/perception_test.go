package perception

import (
	"testing"

	"latlab/internal/kernel"
)

// TestClassOfKindMatchesLabelMapping pins the kind→class mapping and
// keeps the string-label variant (used by trace attribution, which only
// has kind names) in lockstep with it: every message kind must classify
// identically through both doors.
func TestClassOfKindMatchesLabelMapping(t *testing.T) {
	kinds := []kernel.MsgKind{
		kernel.WMNull, kernel.WMKeyDown, kernel.WMChar, kernel.WMMouseDown,
		kernel.WMMouseUp, kernel.WMPaint, kernel.WMTimer, kernel.WMQueueSync,
		kernel.WMCommand, kernel.WMIdleWork, kernel.WMSysCommand, kernel.WMQuit,
	}
	for _, k := range kinds {
		if got, want := ClassOfLabel(k.String()), ClassOfKind(k); got != want {
			t.Errorf("%v: ClassOfLabel=%v ClassOfKind=%v", k, got, want)
		}
	}
	if ClassOfKind(kernel.WMKeyDown) != Typing || ClassOfKind(kernel.WMChar) != Typing {
		t.Errorf("keystrokes must classify as typing")
	}
	if ClassOfKind(kernel.WMMouseDown) != Pointing || ClassOfKind(kernel.WMMouseUp) != Pointing {
		t.Errorf("mouse events must classify as pointing")
	}
	if ClassOfKind(kernel.WMCommand) != Command || ClassOfKind(kernel.WMSysCommand) != Command {
		t.Errorf("commands must classify as command")
	}
	if ClassOfLabel("no-such-label") != Command {
		t.Errorf("unknown labels must fall into the loosest class")
	}
}

// TestClassifyBoundaries walks every event class's budget and checks
// the half-open boundary convention: a latency exactly at a threshold
// belongs to the worse class.
func TestClassifyBoundaries(t *testing.T) {
	m := Default()
	for ec := EventClass(0); ec < NumEventClasses; ec++ {
		b := m.Budgets[ec]
		cases := []struct {
			ms   float64
			want Class
		}{
			{0, Imperceptible},
			{b.PerceptibleMs - 0.001, Imperceptible},
			{b.PerceptibleMs, Perceptible},
			{b.AnnoyingMs - 0.001, Perceptible},
			{b.AnnoyingMs, Annoying},
			{b.UnusableMs - 0.001, Annoying},
			{b.UnusableMs, Unusable},
			{b.UnusableMs * 10, Unusable},
		}
		for _, c := range cases {
			if got := m.Classify(ec, c.ms); got != c.want {
				t.Errorf("%v %.3fms: got %v, want %v", ec, c.ms, got, c.want)
			}
		}
	}
}

// TestClassifyMonotone: a worse latency can never land in a better
// class, for every event class.
func TestClassifyMonotone(t *testing.T) {
	m := Default()
	for ec := EventClass(0); ec < NumEventClasses; ec++ {
		prev := Imperceptible
		for ms := 0.0; ms <= 5000; ms += 7.3 {
			c := m.Classify(ec, ms)
			if c < prev {
				t.Fatalf("%v: class improved from %v to %v at %.1fms", ec, prev, c, ms)
			}
			prev = c
		}
	}
}

// TestBudgetsOrderedAndPointingStrictest sanity-checks the default
// calibration: thresholds ascend within each class, pointing is the
// tightest contract, and the typing perception bound is the classical
// 100 ms the rest of the repo uses.
func TestBudgetsOrderedAndPointingStrictest(t *testing.T) {
	m := Default()
	for ec := EventClass(0); ec < NumEventClasses; ec++ {
		b := m.Budgets[ec]
		if !(0 < b.PerceptibleMs && b.PerceptibleMs < b.AnnoyingMs && b.AnnoyingMs < b.UnusableMs) {
			t.Errorf("%v budget not strictly ascending: %+v", ec, b)
		}
	}
	if m.Budgets[Typing].PerceptibleMs != 100 {
		t.Errorf("typing perception bound = %v, want the classical 100ms", m.Budgets[Typing].PerceptibleMs)
	}
	for ec := EventClass(0); ec < NumEventClasses; ec++ {
		if ec != Pointing && m.Budgets[ec].PerceptibleMs <= m.Budgets[Pointing].PerceptibleMs {
			t.Errorf("pointing must be the strictest class, but %v is tighter", ec)
		}
	}
}

// TestPathLadders: each ladder starts with the full path at 100% and
// descends strictly in latency share.
func TestPathLadders(t *testing.T) {
	for ec := EventClass(0); ec < NumEventClasses; ec++ {
		paths := Paths(ec)
		if len(paths) < 2 {
			t.Fatalf("%v: ladder needs at least full + one fallback", ec)
		}
		if paths[0].Name != "full-render" || paths[0].LatencyPct != 100 {
			t.Errorf("%v: first path %+v, want full-render at 100%%", ec, paths[0])
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].LatencyPct >= paths[i-1].LatencyPct {
				t.Errorf("%v: ladder not strictly descending at %d: %+v", ec, i, paths)
			}
			if paths[i].LatencyPct <= 0 {
				t.Errorf("%v: nonpositive latency share %+v", ec, paths[i])
			}
		}
	}
}

// TestBestPath pins the verdict at the three regimes: fast events keep
// the full path, slow events drop down the ladder, hopeless events fail
// even the cheapest path.
func TestBestPath(t *testing.T) {
	m := Default()
	// 40ms keystroke: full render already imperceptible.
	if p, ok := m.BestPath(Typing, 40); !ok || p.Name != "full-render" {
		t.Errorf("fast typing: got %+v ok=%v, want full-render", p, ok)
	}
	// 250ms keystroke: full path misses 100ms, glyph echo (35%) = 87.5ms fits.
	if p, ok := m.BestPath(Typing, 250); !ok || p.Name != "glyph-echo" {
		t.Errorf("slow typing: got %+v ok=%v, want glyph-echo", p, ok)
	}
	// 5s keystroke: even caret-only (10%) = 500ms misses; hopeless.
	if p, ok := m.BestPath(Typing, 5000); ok || p.Name != "caret-only" {
		t.Errorf("hopeless typing: got %+v ok=%v, want caret-only/false", p, ok)
	}
	// 300ms drag: full misses 50ms, outline (30%) = 90ms misses, cursor (5%) = 15ms fits.
	if p, ok := m.BestPath(Pointing, 300); !ok || p.Name != "cursor-only" {
		t.Errorf("slow pointing: got %+v ok=%v, want cursor-only", p, ok)
	}
}

// TestBreakdown checks accumulation and share arithmetic, including the
// empty-breakdown guard.
func TestBreakdown(t *testing.T) {
	var b Breakdown
	if b.Share(Imperceptible) != 0 {
		t.Fatalf("empty breakdown must have zero shares")
	}
	m := Default()
	latencies := []float64{5, 20, 80, 120, 400, 2500}
	for _, ms := range latencies {
		b.Add(m.Classify(Typing, ms))
	}
	if b.Total != len(latencies) {
		t.Fatalf("total %d, want %d", b.Total, len(latencies))
	}
	want := [NumClasses]int{3, 1, 1, 1}
	if b.Counts != want {
		t.Fatalf("counts %v, want %v", b.Counts, want)
	}
	sum := 0.0
	for c := Class(0); c < NumClasses; c++ {
		sum += b.Share(c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestStringNames(t *testing.T) {
	wantClass := map[Class]string{
		Imperceptible: "imperceptible", Perceptible: "perceptible",
		Annoying: "annoying", Unusable: "unusable", NumClasses: "class?",
	}
	for c, want := range wantClass {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	wantEvent := map[EventClass]string{
		Typing: "typing", Pointing: "pointing", Command: "command",
		NumEventClasses: "event?",
	}
	for e, want := range wantEvent {
		if got := e.String(); got != want {
			t.Errorf("EventClass(%d).String() = %q, want %q", e, got, want)
		}
	}
}

func TestClassifyKind(t *testing.T) {
	m := Default()
	// 120 ms is perceptible typing (budget 100) but imperceptible as a
	// command (budget 200): the kind must drive the budget.
	if got := m.ClassifyKind(kernel.WMKeyDown, 120); got != Perceptible {
		t.Errorf("ClassifyKind(WMKeyDown, 120) = %v, want perceptible", got)
	}
	if got := m.ClassifyKind(kernel.WMCommand, 120); got != Imperceptible {
		t.Errorf("ClassifyKind(WMCommand, 120) = %v, want imperceptible", got)
	}
}
