// Package perception classifies measured event latencies against
// user-perceived responsiveness thresholds, and models the alternative
// input-to-display paths a system could take per event class.
//
// The paper's methodology produces distributions of event latencies;
// this layer answers the question those numbers exist for: would a
// user have noticed? Two lines of later work calibrate the answer.
// The screencast-based GUI-responsiveness study (arXiv 2508.01337)
// measured real applications against empirical perception thresholds
// and found the classical ~100 ms "instantaneous" bound (which this
// repo already uses as core.PerceptionThresholdMs) holds up for
// discrete actions, with annoyance setting in by a few hundred
// milliseconds and abandonment beyond a couple of seconds. POLYPATH
// (arXiv 1608.05654) adds the per-class structure: different event
// classes travel different input-to-display paths with different
// latency/quality tradeoffs — a drag needs feedback far sooner than a
// menu command, and a system that cannot make the full-fidelity path
// fast enough can take a cheaper path (echo the glyph before layout,
// drag an outline instead of the window) and backfill quality later.
//
// Everything here is pure arithmetic over already-measured latencies:
// attaching the layer to a trace, a campaign ledger, or an experiment
// table never perturbs a simulation.
package perception

import (
	"latlab/internal/kernel"
)

// Class is a perceptual latency class, ordered from best to worst.
type Class uint8

// Perceptual classes. The boundaries come from Model budgets; the
// names are the chapter's vocabulary.
const (
	// Imperceptible: below the class's perception threshold; the user
	// experiences the response as instantaneous.
	Imperceptible Class = iota
	// Perceptible: noticeable lag, but within working tolerance.
	Perceptible
	// Annoying: the user notices and minds; flow is disrupted.
	Annoying
	// Unusable: beyond the tolerance ceiling; users retry, queue
	// duplicate input, or abandon the action.
	Unusable
	// NumClasses counts the classes.
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Imperceptible:
		return "imperceptible"
	case Perceptible:
		return "perceptible"
	case Annoying:
		return "annoying"
	case Unusable:
		return "unusable"
	default:
		return "class?"
	}
}

// EventClass groups input events by the responsiveness contract they
// carry, following POLYPATH's observation that budgets are per-class,
// not global.
type EventClass uint8

// Event classes.
const (
	// Typing is discrete keystroke echo (WM_KEYDOWN, WM_CHAR).
	Typing EventClass = iota
	// Pointing is direct manipulation (mouse press/release, drags) —
	// the tightest budgets: the hand is in the loop.
	Pointing
	// Command is everything invoked and then awaited: menu commands,
	// window-management actions, navigation.
	Command
	// NumEventClasses counts the event classes.
	NumEventClasses
)

// String names the event class.
func (e EventClass) String() string {
	switch e {
	case Typing:
		return "typing"
	case Pointing:
		return "pointing"
	case Command:
		return "command"
	default:
		return "event?"
	}
}

// ClassOfKind maps a message kind to its event class. Kinds that are
// not user input (timers, paints) fall into Command, the loosest
// contract; they only appear if a caller classifies non-input events.
func ClassOfKind(k kernel.MsgKind) EventClass {
	switch k {
	case kernel.WMKeyDown, kernel.WMChar:
		return Typing
	case kernel.WMMouseDown, kernel.WMMouseUp:
		return Pointing
	default:
		return Command
	}
}

// ClassOfLabel maps a message-kind name ("WM_KEYDOWN") to its event
// class — the form trace attribution tables carry. Unknown labels fall
// into Command.
func ClassOfLabel(label string) EventClass {
	switch label {
	case "WM_KEYDOWN", "WM_CHAR":
		return Typing
	case "WM_LBUTTONDOWN", "WM_LBUTTONUP":
		return Pointing
	default:
		return Command
	}
}

// Budget holds one event class's three class boundaries, in
// milliseconds: latency below PerceptibleMs is Imperceptible, below
// AnnoyingMs Perceptible, below UnusableMs Annoying, else Unusable.
type Budget struct {
	PerceptibleMs float64
	AnnoyingMs    float64
	UnusableMs    float64
}

// Model is a full calibration: one Budget per event class.
type Model struct {
	Budgets [NumEventClasses]Budget
}

// Default returns the calibration the experiments and docs use.
//
//   - Typing keeps the classical 100 ms instantaneous bound — the same
//     constant the paper's era used and core.PerceptionThresholdMs
//     encodes — with annoyance from 300 ms and the 2 s ceiling this
//     repo already uses as the irritation threshold.
//   - Pointing is twice as strict (50 ms): direct manipulation couples
//     the hand to the display, and the screencast study's continuous-
//     interaction measurements sit well below the discrete bound.
//   - Command is the loose contract (200 ms / 1 s / 3 s): an invoked
//     action tolerates a beat of delay before annoyance, and multi-
//     second waits are where abandonment behaviour begins.
func Default() Model {
	return Model{Budgets: [NumEventClasses]Budget{
		Typing:   {PerceptibleMs: 100, AnnoyingMs: 300, UnusableMs: 2000},
		Pointing: {PerceptibleMs: 50, AnnoyingMs: 150, UnusableMs: 1000},
		Command:  {PerceptibleMs: 200, AnnoyingMs: 1000, UnusableMs: 3000},
	}}
}

// Classify places one measured latency into its perceptual class under
// the event class's budget.
func (m Model) Classify(ec EventClass, ms float64) Class {
	b := m.Budgets[ec]
	switch {
	case ms < b.PerceptibleMs:
		return Imperceptible
	case ms < b.AnnoyingMs:
		return Perceptible
	case ms < b.UnusableMs:
		return Annoying
	default:
		return Unusable
	}
}

// ClassifyKind is Classify with the kind→event-class mapping applied.
func (m Model) ClassifyKind(k kernel.MsgKind, ms float64) Class {
	return m.Classify(ClassOfKind(k), ms)
}

// Path is one input-to-display path: a named rendering strategy whose
// latency is LatencyPct percent of the full path's, bought by giving
// up fidelity. Paths per class are ordered best-quality first; the
// first entry is always the full path at 100%.
type Path struct {
	Name       string
	LatencyPct int
}

// Paths returns the event class's path ladder, POLYPATH-style: the
// full-fidelity path first, then progressively cheaper feedback paths.
// The percentages are modeling estimates of how much of the measured
// full-path latency each strategy would retain.
func Paths(ec EventClass) []Path {
	switch ec {
	case Typing:
		return []Path{
			{Name: "full-render", LatencyPct: 100},
			{Name: "glyph-echo", LatencyPct: 35},
			{Name: "caret-only", LatencyPct: 10},
		}
	case Pointing:
		return []Path{
			{Name: "full-render", LatencyPct: 100},
			{Name: "outline-drag", LatencyPct: 30},
			{Name: "cursor-only", LatencyPct: 5},
		}
	default:
		return []Path{
			{Name: "full-render", LatencyPct: 100},
			{Name: "progressive", LatencyPct: 40},
			{Name: "acknowledge", LatencyPct: 8},
		}
	}
}

// BestPath returns the highest-fidelity path that would have kept this
// event imperceptible, given its measured full-path latency. ok is
// false when even the cheapest path misses the budget — the event is
// hopeless at any fidelity and the last path is returned for labeling.
func (m Model) BestPath(ec EventClass, ms float64) (Path, bool) {
	paths := Paths(ec)
	budget := m.Budgets[ec].PerceptibleMs
	for _, p := range paths {
		if ms*float64(p.LatencyPct)/100 < budget {
			return p, true
		}
	}
	return paths[len(paths)-1], false
}

// Breakdown accumulates a class histogram over a set of events.
type Breakdown struct {
	Counts [NumClasses]int
	Total  int
}

// Add folds one classified event into the breakdown.
func (b *Breakdown) Add(c Class) {
	b.Counts[c]++
	b.Total++
}

// Share returns the fraction of events in class c (0 on an empty
// breakdown).
func (b Breakdown) Share(c Class) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Counts[c]) / float64(b.Total)
}
