package winsys

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

var appPages = []uint64{300, 301, 302, 303, 304, 305}

// measure runs fn on an app thread under persona p and returns its
// duration and the CPU counter deltas.
func measure(t *testing.T, p persona.P, warmups int, fn func(tc *kernel.TC, w *WinSys)) (simtime.Duration, [cpu.NumEventKinds]int64) {
	t.Helper()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	w.BindApp(appPages)
	var dur simtime.Duration
	var before, after [cpu.NumEventKinds]int64
	k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for i := 0; i < warmups; i++ {
			fn(tc, w)
		}
		before = k.CPU().Snapshot()
		start := tc.Now()
		fn(tc, w)
		dur = tc.Now().Sub(start)
		after = k.CPU().Snapshot()
	})
	k.Run(simtime.Time(30 * simtime.Second))
	var delta [cpu.NumEventKinds]int64
	for i := range delta {
		delta[i] = after[i] - before[i]
	}
	return dur, delta
}

func TestArchCrossingBehaviour(t *testing.T) {
	textOut := func(tc *kernel.TC, w *WinSys) { w.TextOut(tc, 1) }

	_, d351 := measure(t, persona.NT351(), 2, textOut)
	_, d40 := measure(t, persona.NT40(), 2, textOut)
	_, d95 := measure(t, persona.W95(), 2, textOut)

	if d351[cpu.DomainCrossings] != 2 {
		t.Fatalf("NT 3.51 crossings = %d, want 2 per call", d351[cpu.DomainCrossings])
	}
	if d40[cpu.DomainCrossings] != 0 || d95[cpu.DomainCrossings] != 0 {
		t.Fatalf("NT 4.0 / W95 must not cross domains: %d/%d",
			d40[cpu.DomainCrossings], d95[cpu.DomainCrossings])
	}
	// Crossings flush TLBs: NT 3.51 refills on a warm repeat, NT 4.0 is
	// mostly resident.
	tlb := func(d [cpu.NumEventKinds]int64) int64 { return d[cpu.ITLBMisses] + d[cpu.DTLBMisses] }
	if tlb(d351) <= tlb(d40) {
		t.Fatalf("warm TLB misses: NT3.51 %d should exceed NT4.0 %d", tlb(d351), tlb(d40))
	}
	// Only Windows 95 shows the 16-bit signature.
	if d95[cpu.SegmentLoads] == 0 || d95[cpu.UnalignedAccesses] == 0 {
		t.Fatalf("W95 missing 16-bit events")
	}
	if d40[cpu.SegmentLoads] != 0 || d351[cpu.SegmentLoads] != 0 {
		t.Fatalf("NT personas should not load segment registers")
	}
}

func TestWarmLatencyOrdering(t *testing.T) {
	// Paper Figs. 9/10: NT 4.0 fastest, then W95, then NT 3.51 for the
	// warm page-down-like composite (chart + lines).
	pageDown := func(tc *kernel.TC, w *WinSys) {
		w.RepaintLines(tc, 20)
		w.DrawChart(tc, 200)
	}
	l351, _ := measure(t, persona.NT351(), 3, pageDown)
	l40, _ := measure(t, persona.NT40(), 3, pageDown)
	l95, _ := measure(t, persona.W95(), 3, pageDown)
	if !(l40 < l95 && l95 < l351) {
		t.Fatalf("warm ordering want NT40 < W95 < NT351, got %v / %v / %v", l40, l95, l351)
	}
}

func TestW95TLBExcess(t *testing.T) {
	// The wider 16-bit data window must produce clearly more TLB misses
	// than NT 4.0 on the same warm operation (paper: +93%).
	pageDown := func(tc *kernel.TC, w *WinSys) {
		w.RepaintLines(tc, 20)
		w.DrawChart(tc, 200)
	}
	_, d40 := measure(t, persona.NT40(), 3, pageDown)
	_, d95 := measure(t, persona.W95(), 3, pageDown)
	m40 := d40[cpu.ITLBMisses] + d40[cpu.DTLBMisses]
	m95 := d95[cpu.ITLBMisses] + d95[cpu.DTLBMisses]
	if m40 == 0 {
		t.Fatalf("NT 4.0 should still have streaming TLB misses")
	}
	ratio := float64(m95) / float64(m40)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("W95/NT40 TLB-miss ratio = %.2f, want ≈1.93", ratio)
	}
}

func TestStreamingWindowKeepsMissing(t *testing.T) {
	// Redraw-scale ops must not fully warm up: their data cycles a window
	// larger than the TLB.
	p := persona.NT40()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	w.BindApp(appPages)
	var missDeltas []int64
	k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for i := 0; i < 5; i++ {
			before := k.CPU().Count(cpu.DTLBMisses)
			w.RepaintLines(tc, 10)
			missDeltas = append(missDeltas, k.CPU().Count(cpu.DTLBMisses)-before)
		}
	})
	k.Run(simtime.Time(10 * simtime.Second))
	if len(missDeltas) != 5 {
		t.Fatalf("runs = %d", len(missDeltas))
	}
	last := missDeltas[4]
	if last < 50 {
		t.Fatalf("steady-state repaint DTLB misses = %d, want persistent streaming misses", last)
	}
}

func TestTextOutScalesWithChars(t *testing.T) {
	one, _ := measure(t, persona.NT40(), 1, func(tc *kernel.TC, w *WinSys) { w.TextOut(tc, 1) })
	four, _ := measure(t, persona.NT40(), 1, func(tc *kernel.TC, w *WinSys) { w.TextOut(tc, 4) })
	if four < 3*one || four > 5*one {
		t.Fatalf("TextOut(4)=%v vs TextOut(1)=%v, want ≈4x", four, one)
	}
}

func TestMaximizeAnimationShape(t *testing.T) {
	// Fig. 4: animation frames land on 10 ms clock-tick boundaries, grow
	// in cost, and are followed by a long redraw burst.
	p := persona.NT40()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	w.BindApp(appPages)
	var total simtime.Duration
	k.Spawn("shell", 1, 8, func(tc *kernel.TC) {
		start := tc.Now()
		w.MaximizeAnimation(tc, 22, 10)
		total = tc.Now().Sub(start)
	})
	k.Run(simtime.Time(10 * simtime.Second))
	// ~80ms prep + 22 ticks ≥ 220ms + redraw: total within [300ms, 900ms].
	if total < simtime.FromMillis(300) || total > simtime.FromMillis(900) {
		t.Fatalf("maximize animation total = %v, want Fig.4 scale (~500ms)", total)
	}
}

func TestCallsCounter(t *testing.T) {
	p := persona.NT40()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		w.TextOut(tc, 3)
		w.MenuCommand(tc)
	})
	k.Run(simtime.Time(simtime.Second))
	if w.Calls() != 4 {
		t.Fatalf("Calls = %d, want 4", w.Calls())
	}
	if w.Persona().Short != "nt40" {
		t.Fatalf("persona accessor wrong")
	}
}

func TestDeterministicCursors(t *testing.T) {
	run := func() simtime.Duration {
		d, _ := measure(t, persona.W95(), 2, func(tc *kernel.TC, w *WinSys) {
			w.RepaintLines(tc, 15)
			w.DrawChart(tc, 100)
			w.ScrollWindow(tc)
		})
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("winsys non-deterministic: %v vs %v", a, b)
	}
}
