package winsys

import (
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

// Code-page layout for the window system itself (kernel device pages use
// 0-49; apps allocate from 300 up; op data windows from 50000 up).
var (
	gdiKernelPages = pageRange(100, 12) // NT 4.0 in-kernel win32
	serverPages    = pageRange(140, 40) // NT 3.51 user-level server (CSRSS image)
	pages16        = pageRange(180, 14) // Windows 95 16-bit USER/GDI
)

func pageRange(base uint64, n int) []uint64 {
	ps := make([]uint64, n)
	for i := range ps {
		ps[i] = base + uint64(i)
	}
	return ps
}

// opCursor tracks an operation's streaming-data window.
type opCursor struct {
	base   uint64
	window int
	pos    int
	hot    []uint64
	chunks []uint64
}

// WinSys is one persona's window system bound to a kernel instance.
type WinSys struct {
	k        *kernel.Kernel
	p        persona.P
	appPages []uint64
	cursors  map[string]*opCursor
	nextBase uint64
	calls    int64
	batched  int64
}

// New builds the window system for kernel k under persona p.
func New(k *kernel.Kernel, p persona.P) *WinSys {
	return &WinSys{k: k, p: p, cursors: make(map[string]*opCursor), nextBase: 50_000}
}

// Persona returns the persona this window system models.
func (w *WinSys) Persona() persona.P { return w.p }

// Calls returns the number of Win32 calls made so far.
func (w *WinSys) Calls() int64 { return w.calls }

// BatchedCalls returns how many calls were cost-reduced by request
// batching (input queued behind the event being handled).
func (w *WinSys) BatchedCalls() int64 { return w.batched }

// BindApp declares the foreground application's code working set, used
// as the application-side glue refilled after every server crossing.
func (w *WinSys) BindApp(codePages []uint64) { w.appPages = codePages }

func (w *WinSys) cursor(name string, stream, hot, chunks int) *opCursor {
	c, ok := w.cursors[name]
	if ok {
		return c
	}
	// The streaming window must exceed the data TLB so cycling through it
	// keeps missing; 6x the per-call touch count is comfortably past 64
	// entries for redraw-scale operations.
	window := stream * 6
	if window < stream {
		window = stream
	}
	c = &opCursor{base: w.nextBase, window: window}
	for i := 0; i < hot; i++ {
		c.hot = append(c.hot, w.nextBase+3000+uint64(i))
	}
	for i := 0; i < chunks; i++ {
		c.chunks = append(c.chunks, (w.nextBase+3000)*8+uint64(i))
	}
	w.nextBase += 4096
	w.cursors[name] = c
	return c
}

// op describes one Win32 operation's cost on the NT 4.0 baseline; the
// persona transforms it.
type op struct {
	name string
	// cycles is the base (warm, NT 4.0) path length.
	cycles int64
	// hot/stream/chunks are per-call working-set touch counts.
	hot    int
	stream int
	chunks int
	// scale16 is the op's relative path length under Shared16Bit
	// (0 means 1.0): 16-bit USER input paths are slow, while the
	// hand-tuned 16-bit text raster path is faster than NT's portable
	// GDI — which is why Windows 95 has the smallest cumulative latency
	// in the paper's Notepad run (Fig. 7) yet the worst simple-keystroke
	// latency (Fig. 6).
	scale16 float64
}

// call performs one Win32 call under the persona's architecture.
func (w *WinSys) call(tc *kernel.TC, o op) {
	w.calls++

	// Application-side glue (argument marshalling, dispatch); its code
	// pages are the app's, so NT 3.51's return crossing is paid for here.
	if len(w.appPages) > 0 {
		tc.Compute(cpu.Segment{
			Name: o.name + "-glue", BaseCycles: 2000,
			Instructions: 1300, DataRefs: 500,
			CodePages: w.appPages,
		})
	}

	base := int64(float64(o.cycles) * w.p.PathScale)
	if w.p.Arch == persona.Shared16Bit && o.scale16 != 0 {
		base = int64(float64(base) * o.scale16)
	}
	// Request batching: with more user input already queued, the window
	// system coalesces invalidations — throughput up, responsiveness
	// meaningless (§1.1). Realistically paced input never triggers this.
	if w.p.BatchScale > 0 && w.p.BatchScale < 1 && tc.PendingUserInput() {
		base = int64(float64(base) * w.p.BatchScale)
		w.batched++
	}
	stream := int(float64(o.stream) * w.p.DataWindowScale)
	c := w.cursor(o.name, stream, o.hot, o.chunks)

	seg := cpu.Segment{
		Name:         o.name,
		BaseCycles:   base,
		Instructions: base * 6 / 10,
		DataRefs:     base * 3 / 10,
		CacheChunks:  c.chunks,
	}
	seg.DataPages = append(seg.DataPages, c.hot...)
	for i := 0; i < stream; i++ {
		seg.DataPages = append(seg.DataPages, c.base+uint64((c.pos+i)%max(c.window, 1)))
	}
	c.pos = (c.pos + stream) % max(c.window, 1)

	if w.p.SegLoadsPerKCycle > 0 {
		seg.SegmentLoads = int64(w.p.SegLoadsPerKCycle * float64(base) / 1000)
	}
	if w.p.UnalignedPerKCycle > 0 {
		seg.UnalignedAccesses = int64(w.p.UnalignedPerKCycle * float64(base) / 1000)
	}

	switch w.p.Arch {
	case persona.ServerProcess:
		seg.CodePages = serverPages
		tc.DomainCross()
		tc.Compute(seg)
		tc.DomainCross()
	case persona.KernelMode:
		seg.CodePages = gdiKernelPages
		tc.ModeSwitch()
		tc.Compute(seg)
	case persona.Shared16Bit:
		seg.CodePages = pages16
		tc.ModeSwitch()
		tc.Compute(seg)
	}
}

// KeyTranslate is the system-side processing of a raw key-down into a
// character event (TranslateMessage and friends).
func (w *WinSys) KeyTranslate(tc *kernel.TC) {
	w.call(tc, op{name: "keytranslate", cycles: 18_000, hot: 4, scale16: 1.8})
}

// DefWindowProc is the default handling of an unbound input event.
func (w *WinSys) DefWindowProc(tc *kernel.TC) {
	w.call(tc, op{name: "defwindowproc", cycles: 14_000, hot: 4, scale16: 1.8})
}

// MouseEvent is the system-side processing of a mouse button event.
func (w *WinSys) MouseEvent(tc *kernel.TC) {
	w.call(tc, op{name: "mouseevent", cycles: 16_000, hot: 4, scale16: 1.8})
}

// TextOut renders n characters at the caret (per-keystroke echo path:
// glyph lookup, raster op, caret move).
func (w *WinSys) TextOut(tc *kernel.TC, n int) {
	for i := 0; i < n; i++ {
		w.call(tc, op{name: "textout", cycles: 150_000, hot: 8, stream: 3, chunks: 12, scale16: 0.7})
	}
}

// ScrollWindow shifts the client area by one line (blit).
func (w *WinSys) ScrollWindow(tc *kernel.TC) {
	w.call(tc, op{name: "scrollwindow", cycles: 420_000, hot: 8, stream: 24, chunks: 16})
}

// RepaintLines redraws n text lines (scroll/page-down refresh).
func (w *WinSys) RepaintLines(tc *kernel.TC, n int) {
	for i := 0; i < n; i++ {
		w.call(tc, op{name: "repaintline", cycles: 105_000, hot: 8, stream: 10, chunks: 10})
	}
}

// DrawChart renders an embedded graph of the given element count (the
// PowerPoint OLE graph of Figs. 8-10).
func (w *WinSys) DrawChart(tc *kernel.TC, elements int) {
	for i := 0; i < elements; i += 2 {
		w.call(tc, op{name: "drawchart", cycles: 36_000, hot: 10, stream: 12, chunks: 8})
	}
}

// DrawFrame draws the animated window outline at growth step i (the
// maximize animation of Fig. 4); cost grows with the outline size.
func (w *WinSys) DrawFrame(tc *kernel.TC, step int) {
	w.call(tc, op{name: "drawframe", cycles: 40_000 + int64(step)*25_000, hot: 6, stream: 4, chunks: 6})
}

// RepaintWindow redraws the full client area: cells scales the work (a
// maximized window redraw is the 200 ms burst in Fig. 4).
func (w *WinSys) RepaintWindow(tc *kernel.TC, cells int) {
	for i := 0; i < cells; i++ {
		w.call(tc, op{name: "repaintcell", cycles: 190_000, hot: 8, stream: 14, chunks: 12})
	}
}

// OLESetup performs the GUI work of an OLE in-place activation: window
// re-parenting, menu merging, toolbar negotiation. It is call-heavy, and
// the user-level-server persona multiplies the round-trip count
// (ServerCallScale) — the §5.3/Fig. 10 mechanism writ large.
func (w *WinSys) OLESetup(tc *kernel.TC, calls int) {
	n := int(float64(calls) * w.p.ServerCallScale)
	if n < calls {
		n = calls
	}
	for i := 0; i < n; i++ {
		w.call(tc, op{name: "olesetup", cycles: 30_000, hot: 10, stream: 40, chunks: 12})
	}
}

// MenuCommand processes a menu/command dispatch.
func (w *WinSys) MenuCommand(tc *kernel.TC) {
	w.call(tc, op{name: "menucommand", cycles: 60_000, hot: 6, stream: 2, chunks: 6})
}

// CreateWindow sets up a new top-level window.
func (w *WinSys) CreateWindow(tc *kernel.TC) {
	w.call(tc, op{name: "createwindow", cycles: 900_000, hot: 12, stream: 20, chunks: 24})
}

// MaximizeAnimation performs the paper's §2.6 window-maximize sequence:
// an initial processing burst, `steps` animation frames paced by the
// clock tick (the 10 ms-aligned stair pattern of Fig. 4), then a full
// redraw burst.
func (w *WinSys) MaximizeAnimation(tc *kernel.TC, steps, redrawCells int) {
	// Initial input processing: ~80 ms of window-manager work.
	w.call(tc, op{name: "maxprep", cycles: 7_800_000, hot: 16, stream: 30, chunks: 30})
	for i := 1; i <= steps; i++ {
		// Pace the animation: wait for the next clock tick.
		tc.Sleep(simtime.Nanosecond)
		w.DrawFrame(tc, i)
	}
	w.RepaintWindow(tc, redrawCells)
}
