// Package winsys models the window-system / Win32 API layer the
// applications call through. Every operation funnels through one of
// three architectural paths selected by the persona:
//
//   - ServerProcess (NT 3.51): domain crossing → server segment →
//     domain crossing back. Each crossing flushes the TLBs, so the
//     server's and the application's working sets are refilled on every
//     call — the mechanism behind the paper's Fig. 9/10 TLB-miss gap.
//   - KernelMode (NT 4.0): mode switch → kernel segment; no flush.
//   - Shared16Bit (Windows 95): mode switch → 16-bit segment carrying
//     segment-register loads, unaligned accesses, and a wider data
//     working set.
//
// Operations describe their memory behaviour as a small *hot* working
// set (warms up and stays resident) plus a *streaming* window (cycled
// through a region larger than the TLB, so it misses persistently —
// bitmap and glyph data during redraws).
//
// Invariants:
//
//   - Costs emerge from mechanism. An operation's latency is whatever
//     the cpu/mem cost model charges for its segments and crossings on
//     the current machine; winsys asserts no latency constants of its
//     own.
//   - Path parity. The same operation issued under different personas
//     performs the same logical work; only the architectural path (and
//     hence the memory-system damage) differs.
//   - Deterministic segment layout. Working-set page numbers are fixed
//     at construction, so two runs touch identical pages in identical
//     order.
package winsys
