package winsys

import (
	"testing"

	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

// opDuration runs a single op on a quiet NT 4.0 rig and returns its
// duration after one warm-up.
func opDuration(t *testing.T, p persona.P, fn func(tc *kernel.TC, w *WinSys)) simtime.Duration {
	t.Helper()
	d, _ := measure(t, p, 1, fn)
	return d
}

func TestOpCostOrdering(t *testing.T) {
	p := persona.NT40()
	mouse := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.MouseEvent(tc) })
	menu := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.MenuCommand(tc) })
	scroll := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.ScrollWindow(tc) })
	create := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.CreateWindow(tc) })
	if !(mouse < menu && menu < scroll && scroll < create) {
		t.Fatalf("cost ordering wrong: mouse %v menu %v scroll %v create %v",
			mouse, menu, scroll, create)
	}
	// Sanity bands.
	if mouse < 100*simtime.Microsecond || mouse > simtime.Millisecond {
		t.Fatalf("mouse event = %v, want sub-ms", mouse)
	}
	if create < 5*simtime.Millisecond || create > 30*simtime.Millisecond {
		t.Fatalf("create window = %v, want ≈10ms", create)
	}
}

func TestDrawFrameGrowsWithStep(t *testing.T) {
	p := persona.NT40()
	small := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.DrawFrame(tc, 1) })
	big := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.DrawFrame(tc, 22) })
	// 40k+25k vs 40k+550k cycles: ≈9x.
	if big < 5*small {
		t.Fatalf("frame cost should grow with the outline: step1 %v, step22 %v", small, big)
	}
}

func TestOLESetupServerCallScale(t *testing.T) {
	base := persona.NT40()
	baseDur := opDuration(t, base, func(tc *kernel.TC, w *WinSys) { w.OLESetup(tc, 50) })

	scaled := persona.NT40()
	scaled.ServerCallScale = 2.0
	scaledDur := opDuration(t, scaled, func(tc *kernel.TC, w *WinSys) { w.OLESetup(tc, 50) })
	ratio := float64(scaledDur) / float64(baseDur)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("ServerCallScale 2.0 should double OLESetup: ratio %.2f", ratio)
	}

	// A sub-1 scale must never reduce the call count below the request.
	under := persona.NT40()
	under.ServerCallScale = 0.5
	underDur := opDuration(t, under, func(tc *kernel.TC, w *WinSys) { w.OLESetup(tc, 50) })
	if underDur < baseDur {
		t.Fatalf("scale <1 should clamp to the requested call count")
	}
}

func TestRepaintLinesScales(t *testing.T) {
	p := persona.NT40()
	five := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.RepaintLines(tc, 5) })
	twenty := opDuration(t, p, func(tc *kernel.TC, w *WinSys) { w.RepaintLines(tc, 20) })
	ratio := float64(twenty) / float64(five)
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("RepaintLines(20)/RepaintLines(5) = %.2f, want ≈4", ratio)
	}
}

func TestGlueSkippedWithoutBoundApp(t *testing.T) {
	// Without BindApp, ops still work (no glue compute).
	p := persona.NT40()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	var dur simtime.Duration
	k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		start := tc.Now()
		w.MenuCommand(tc)
		dur = tc.Now().Sub(start)
	})
	k.Run(simtime.Time(simtime.Second))
	if dur <= 0 {
		t.Fatalf("op without bound app did nothing")
	}
}

func TestW95SegloadsScaleWithOpSize(t *testing.T) {
	p := persona.W95()
	_, small := measure(t, p, 1, func(tc *kernel.TC, w *WinSys) { w.MenuCommand(tc) })
	_, big := measure(t, p, 1, func(tc *kernel.TC, w *WinSys) { w.CreateWindow(tc) })
	if small[6] == 0 || big[6] <= small[6] { // index 6 = SegmentLoads
		t.Fatalf("segment loads should scale with op size: %d vs %d", small[6], big[6])
	}
}

func TestBatchScaleOnlyWithQueuedInput(t *testing.T) {
	p := persona.NT40()
	k := kernel.New(p.Kernel)
	defer k.Shutdown()
	w := New(k, p)
	w.BindApp(appPages)
	var aloneDur, queuedDur simtime.Duration
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		// Handle first message with nothing queued.
		tc.GetMessage()
		start := tc.Now()
		w.TextOut(tc, 1)
		aloneDur = tc.Now().Sub(start)
		// Handle second with a third already waiting.
		tc.GetMessage()
		start = tc.Now()
		w.TextOut(tc, 1)
		queuedDur = tc.Now().Sub(start)
		tc.GetMessage()
	})
	post := func(at int64) {
		k.At(simtime.Time(at)*simtime.Time(simtime.Millisecond), func(simtime.Time) {
			k.PostMessage(app, kernel.WMChar, 0)
		})
	}
	post(10)
	post(100)
	post(100) // delivered together: queued behind the second
	k.Run(simtime.Time(simtime.Second))
	if w.BatchedCalls() != 1 {
		t.Fatalf("batched calls = %d, want 1", w.BatchedCalls())
	}
	ratio := float64(queuedDur) / float64(aloneDur)
	if ratio < 0.6 || ratio > 0.9 {
		t.Fatalf("batched call ratio = %.2f, want ≈0.75", ratio)
	}
}
