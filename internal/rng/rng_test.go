package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestKnownSequence(t *testing.T) {
	// Pin the first outputs for seed 0 so any accidental algorithm change
	// (which would silently re-randomise every experiment) fails loudly.
	s := New(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 64; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := New(seed)
		for i := 0; i < 32; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	const n = 200_000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Fatalf("normal std = %v, want ≈3", std)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(9)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(5)
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ≈5", mean)
	}
}

func TestUniform(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(3, 8)
		if v < 3 || v >= 8 {
			t.Fatalf("Uniform(3,8) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Fork()
	// Child stream should not equal a shifted parent stream.
	p2 := New(42)
	p2.Uint64() // advance past the fork draw
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream tracks parent: %d/100 identical", same)
	}
}
