package rng

import "math"

// Source is a deterministic SplitMix64 generator. The zero value is a
// valid generator seeded with 0; prefer New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed float with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exponential returns an exponentially distributed float with the given
// mean (rate 1/mean).
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from s. Streams drawn from the
// parent and the child are uncorrelated for practical purposes, letting
// subsystems own private generators without perturbing each other's
// sequences when one draws more values.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xa5a5a5a5deadbeef)
}
