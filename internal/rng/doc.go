// Package rng provides the deterministic pseudo-random number
// generator used by latlab's stochastic models (typist pacing, disk
// geometry jitter, cost dispersion).
//
// It implements SplitMix64, a tiny, well-tested 64-bit generator whose
// output is stable across Go releases — unlike math/rand's unexported
// algorithms, whose sequences latlab must not depend on because every
// experiment is expected to be bit-reproducible from its seed.
//
// Invariants:
//
//   - Stable sequences. A Source seeded with the same value yields the
//     same stream on every platform and Go version; goldens depend on
//     this.
//   - Stream independence. Deriving salted child sources (per model,
//     per machine) decorrelates consumers, so adding a draw in one
//     model never shifts another model's sequence.
//   - No global state. Every consumer owns its Source; there is no
//     package-level generator to race on or to seed twice.
package rng
