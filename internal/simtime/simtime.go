package simtime

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant in simulated time, in nanoseconds since boot.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel instant later than any reachable simulation time.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as a floating-point number of seconds since boot.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the instant as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant as a duration since boot, e.g. "1.204s".
func (t Time) String() string { return time.Duration(t).String() }

// Std converts a simulated duration to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration, e.g. "10.76ms".
func (d Duration) String() string { return time.Duration(d).String() }

// FromMillis builds a duration from a floating-point millisecond count,
// rounding to the nearest nanosecond.
func FromMillis(ms float64) Duration {
	return Duration(math.Round(ms * float64(Millisecond)))
}

// FromSeconds builds a duration from a floating-point second count,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// IterationsBefore returns the greatest n ≥ 0 such that
// start + n*step < limit: how many whole step-long iterations fit
// strictly before limit. It is the bulk-advance primitive behind
// analytic idle-span skipping — n identical idle cycles can be elided
// when n cycles end strictly before the next scheduled event, leaving
// the straddling cycle to be simulated honestly. step must be positive.
func IterationsBefore(start Time, step Duration, limit Time) int64 {
	if step <= 0 {
		panic("simtime: non-positive step")
	}
	gap := limit.Sub(start)
	if gap <= 0 {
		return 0
	}
	// Greatest n with n*step < gap  ⇔  n = ceil(gap/step) - 1.
	return (int64(gap) - 1) / int64(step)
}

// Hz describes a clock frequency and converts between cycles and time.
// The simulated machine runs at 100 MHz, matching the paper's Pentium.
type Hz int64

// CPUFrequency is the simulated processor clock: 100 MHz (100 cycles/µs).
const CPUFrequency Hz = 100_000_000

// CyclesIn returns the number of clock cycles that elapse in d at frequency h.
func (h Hz) CyclesIn(d Duration) int64 {
	// cycles = d[ns] * h[1/s] / 1e9, computed to avoid overflow for
	// realistic simulation spans (minutes at 100 MHz fits easily in int64).
	return int64(d) / (int64(Second) / int64(h))
}

// DurationOf returns the simulated time consumed by n clock cycles at frequency h.
func (h Hz) DurationOf(cycles int64) Duration {
	return Duration(cycles * (int64(Second) / int64(h)))
}

// CycleAt returns the value a free-running cycle counter started at boot
// would hold at instant t.
func (h Hz) CycleAt(t Time) int64 { return h.CyclesIn(Duration(t)) }

// Validate panics if the frequency does not divide a second evenly; the
// converters above rely on an integral nanosecond period.
func (h Hz) Validate() {
	if h <= 0 || int64(Second)%int64(h) != 0 {
		panic(fmt.Sprintf("simtime: frequency %d does not have an integral ns period", h))
	}
}
