// Package simtime provides the simulated time base used throughout
// latlab.
//
// Simulated time is a count of nanoseconds since machine boot. It is
// unrelated to wall-clock time: the discrete-event simulator advances
// it explicitly. A separate Duration type mirrors time.Duration
// semantics but keeps simulated and host time from being mixed
// accidentally.
//
// Invariants:
//
//   - Integer nanoseconds. Time and Duration are int64 counts; all
//     arithmetic is exact, so replaying a schedule reproduces it bit
//     for bit (floats appear only at presentation boundaries such as
//     Milliseconds).
//   - Monotonic by construction. Nothing in this package reads a host
//     clock; simulated time moves only when the simulator moves it.
//   - Cycle accounting is lossless. Hz.DurationOf and CycleAt round
//     deterministically, so converting cycles to time and back never
//     depends on platform floating-point behaviour.
package simtime
