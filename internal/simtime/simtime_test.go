package simtime

import (
	"testing"
	"testing/quick"
)

func TestArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(10 * Millisecond)
	if got := t1.Sub(t0); got != 10*Millisecond {
		t.Fatalf("Sub = %v, want 10ms", got)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatalf("Before ordering wrong")
	}
	if !t1.After(t0) {
		t.Fatalf("After ordering wrong")
	}
}

func TestConversions(t *testing.T) {
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
	if got := FromMillis(10.76); got != 10760*Microsecond {
		t.Fatalf("FromMillis = %v", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds = %v", got)
	}
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Time.Seconds = %v", got)
	}
	if got := Time(2 * Millisecond).Milliseconds(); got != 2 {
		t.Fatalf("Time.Milliseconds = %v", got)
	}
}

func TestCPUFrequency(t *testing.T) {
	CPUFrequency.Validate()
	// 100 MHz: 1 ms = 100,000 cycles; 1 cycle = 10 ns.
	if got := CPUFrequency.CyclesIn(Millisecond); got != 100_000 {
		t.Fatalf("CyclesIn(1ms) = %d, want 100000", got)
	}
	if got := CPUFrequency.DurationOf(400); got != 4*Microsecond {
		t.Fatalf("DurationOf(400) = %v, want 4µs (paper §2.5 clock interrupt)", got)
	}
	if got := CPUFrequency.CycleAt(Time(Second)); got != 100_000_000 {
		t.Fatalf("CycleAt(1s) = %d", got)
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Validate(3) should panic: 3 Hz has no integral ns period")
		}
	}()
	Hz(3).Validate()
}

func TestCyclesRoundTrip(t *testing.T) {
	// DurationOf(CyclesIn(d)) == d whenever d is a whole number of cycles.
	f := func(raw int32) bool {
		cycles := int64(raw)
		if cycles < 0 {
			cycles = -cycles
		}
		d := CPUFrequency.DurationOf(cycles)
		return CPUFrequency.CyclesIn(d) == cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsBefore(t *testing.T) {
	cases := []struct {
		start Time
		step  Duration
		limit Time
		want  int64
	}{
		{0, Millisecond, Time(10 * Millisecond), 9},                    // 10 steps reach the limit exactly; only 9 end strictly before
		{0, Millisecond, Time(10*Millisecond + 1), 10},                 // one ns past the boundary admits the 10th
		{Time(3 * Millisecond), Millisecond, Time(3 * Millisecond), 0}, // empty gap
		{Time(5 * Millisecond), Millisecond, Time(4 * Millisecond), 0}, // limit behind start
		{0, Millisecond, Time(Millisecond), 0},                         // first step lands on the limit
		{0, Millisecond, Time(Millisecond + 1), 1},
		{0, 3, Time(10), 3},
	}
	for _, c := range cases {
		if got := IterationsBefore(c.start, c.step, c.limit); got != c.want {
			t.Fatalf("IterationsBefore(%v, %v, %v) = %d, want %d", c.start, c.step, c.limit, got, c.want)
		}
	}
}

// TestIterationsBeforeProperty: the returned n is exactly the boundary
// of the strict-before predicate.
func TestIterationsBeforeProperty(t *testing.T) {
	f := func(rawStart, rawStep, rawGap uint16) bool {
		start := Time(rawStart)
		step := Duration(rawStep%1000) + 1
		limit := start.Add(Duration(rawGap))
		n := IterationsBefore(start, step, limit)
		if n < 0 {
			return false
		}
		if start.Add(Duration(n)*step) >= limit && n > 0 {
			return false
		}
		return start.Add(Duration(n+1)*step) >= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsBeforePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("IterationsBefore with zero step should panic")
		}
	}()
	IterationsBefore(0, 0, Time(10))
}

func TestStrings(t *testing.T) {
	if got := (10760 * Microsecond).String(); got != "10.76ms" {
		t.Fatalf("Duration.String = %q", got)
	}
	if got := Time(1500 * Millisecond).String(); got != "1.5s" {
		t.Fatalf("Time.String = %q", got)
	}
	if (2 * Millisecond).Std().Milliseconds() != 2 {
		t.Fatalf("Std conversion wrong")
	}
}
