package spans

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"latlab/internal/simtime"
)

// testClock returns a settable simulated clock.
func testClock() (*simtime.Time, func() simtime.Time) {
	now := new(simtime.Time)
	return now, func() simtime.Time { return *now }
}

func TestCauseNames(t *testing.T) {
	seen := map[string]Cause{}
	for c := Cause(0); c < NumCauses; c++ {
		name := c.String()
		if name == "" || name == "cause-unknown" {
			t.Fatalf("cause %d has no name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("causes %v and %v share name %q", prev, c, name)
		}
		seen[name] = c
		got, ok := CauseByName(name)
		if !ok || got != c {
			t.Fatalf("CauseByName(%q) = %v, %v; want %v, true", name, got, ok, c)
		}
	}
	if _, ok := CauseByName("no-such-cause"); ok {
		t.Fatal("CauseByName accepted an unknown name")
	}
	if NumCauses.String() != "cause-unknown" {
		t.Fatalf("out-of-range String = %q", NumCauses.String())
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	h := r.Begin(CauseExec, "x")
	r.End(h)
	r.BeginAt(CauseEpisode, "e", 5)
	r.EndAt(Handle{}, 9)
	r.Charge(CauseTLBFlush, "", 0, 3)
	r.ChargeSpan(CauseBase, "", 0, 10, 100, 0)
	r.Grow(64)
	r.Reset()
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder recorded something")
	}
}

func TestRecorderTree(t *testing.T) {
	now, clock := testClock()
	r := NewRecorder(clock)

	*now = 100
	ep := r.BeginAt(CauseEpisode, "WM_KEYDOWN", 50)
	*now = 120
	ex := r.Begin(CauseExec, "handler")
	r.Charge(CauseTLBFlush, "", 0, 40)
	*now = 200
	r.ChargeSpan(CauseBase, "handler", 120, 200, 8000, 0)
	r.End(ex)
	*now = 300
	r.End(ep)

	s := r.Spans()
	if len(s) != 4 {
		t.Fatalf("got %d spans, want 4", len(s))
	}
	if s[0].Parent != -1 || s[0].Start != 50 || s[0].End != 300 {
		t.Fatalf("episode span wrong: %+v", s[0])
	}
	if s[1].Parent != 0 || s[1].Start != 120 || s[1].End != 200 {
		t.Fatalf("exec span wrong: %+v", s[1])
	}
	if s[2].Parent != 1 || s[2].Count != 40 || s[2].Duration() != 0 {
		t.Fatalf("flush span wrong: %+v", s[2])
	}
	if s[3].Parent != 1 || s[3].Cycles != 8000 {
		t.Fatalf("base span wrong: %+v", s[3])
	}
}

// TestOutOfOrderEnd closes an outer handle while an inner one is still
// open — the overlapping-syscall shape — and checks the stack recovers.
func TestOutOfOrderEnd(t *testing.T) {
	now, clock := testClock()
	r := NewRecorder(clock)

	a := r.Begin(CauseSyscall, "read a")
	*now = 10
	b := r.Begin(CauseSyscall, "read b")
	*now = 20
	r.End(a) // a closes while b is open
	*now = 30
	// new spans parent under b, the innermost still-open span
	r.Charge(CauseBase, "", 1, 0)
	r.End(b)

	s := r.Spans()
	if s[0].End != 20 || s[1].End != 30 {
		t.Fatalf("ends wrong: a=%v b=%v", s[0].End, s[1].End)
	}
	if s[2].Parent != 1 {
		t.Fatalf("charge parented to %d, want 1", s[2].Parent)
	}
	// ending an already-removed handle is harmless
	r.End(a)
}

func TestAttributionSkipsContainersAndRemapsBase(t *testing.T) {
	now, clock := testClock()
	r := NewRecorder(clock)

	ep := r.BeginAt(CauseEpisode, "e", 0)
	r.ChargeSpan(CauseBase, "app", 0, 100, 1000, 0) // app compute stays base
	ir := r.BeginAt(CauseInterrupt, "timer", 100)
	r.ChargeSpan(CauseBase, "isr", 100, 140, 400, 0)   // -> interrupt
	r.ChargeSpan(CauseTLBMiss, "isr", 140, 150, 50, 2) // stays tlb-miss
	*now = 150
	r.End(ir)
	*now = 200
	r.End(ep)

	a := Attribution(r.Spans())
	if a.Dur[CauseEpisode] != 0 || a.Cycles[CauseInterrupt] != 400 {
		t.Fatalf("container skipped / base remap failed: %+v", a)
	}
	if a.Cycles[CauseBase] != 1000 {
		t.Fatalf("app base = %d, want 1000", a.Cycles[CauseBase])
	}
	if a.Cycles[CauseTLBMiss] != 50 || a.Count[CauseTLBMiss] != 2 {
		t.Fatalf("tlb miss kept identity: %+v", a)
	}
	if a.Total() != 100+40+10 {
		t.Fatalf("total = %v, want 150ns", a.Total())
	}
}

func TestEpisodes(t *testing.T) {
	now, clock := testClock()
	r := NewRecorder(clock)

	// background interrupt before any episode
	bg := r.BeginAt(CauseInterrupt, "timer", 0)
	r.ChargeSpan(CauseBase, "isr", 0, 30, 300, 0)
	*now = 30
	r.End(bg)

	e1 := r.BeginAt(CauseEpisode, "WM_KEYDOWN", 40)
	r.ChargeSpan(CauseTLBMiss, "h", 40, 50, 250, 10)
	*now = 90
	r.End(e1)

	e2 := r.BeginAt(CauseEpisode, "WM_CHAR", 100)
	r.ChargeSpan(CauseBase, "h", 100, 110, 1000, 0)
	*now = 130
	r.End(e2)

	eps, background := Episodes(r.Spans())
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2", len(eps))
	}
	if eps[0].Label != "WM_KEYDOWN" || eps[0].Duration() != 50 {
		t.Fatalf("episode 0 wrong: %+v", eps[0])
	}
	if eps[0].A.Cycles[CauseTLBMiss] != 250 {
		t.Fatalf("episode 0 attribution wrong: %+v", eps[0].A)
	}
	if eps[1].A.Cycles[CauseBase] != 1000 {
		t.Fatalf("episode 1 attribution wrong: %+v", eps[1].A)
	}
	if background.Cycles[CauseInterrupt] != 300 {
		t.Fatalf("background wrong: %+v", background)
	}
}

func TestCollector(t *testing.T) {
	var c *Collector
	c.Add("x", []Span{{}}) // nil collector is inert
	if c.Tracks() != nil {
		t.Fatal("nil collector returned tracks")
	}

	col := &Collector{}
	col.Add("empty", nil) // empty span sets are dropped
	col.Add("b", []Span{{Label: "1"}})
	col.Add("a", []Span{{Label: "2"}})
	col.Add("b", []Span{{Label: "3"}}) // duplicate name gets a suffix
	got := col.Tracks()
	if len(got) != 3 {
		t.Fatalf("got %d tracks, want 3", len(got))
	}
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "b#2" {
		t.Fatalf("track order/names wrong: %q %q %q", got[0].Name, got[1].Name, got[2].Name)
	}
}

func TestWriteChromeLoadableJSON(t *testing.T) {
	now, clock := testClock()
	r := NewRecorder(clock)
	ep := r.BeginAt(CauseEpisode, `key "q"`, 1500)
	r.Charge(CauseTLBFlush, "", 0, 96)
	r.ChargeSpan(CauseTLBMiss, "h", 1500, 4000, 250, 10)
	*now = 5250
	r.End(ep)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []Track{{Name: "NT 3.51 @ p100", Spans: r.Spans()}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// metadata + 3 spans
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event not process metadata: %+v", doc.TraceEvents[0])
	}
	ev := doc.TraceEvents[1] // the episode complete event
	if ev.Ph != "X" || ev.Ts != 1.5 || ev.Dur != 3.75 {
		t.Fatalf("episode event wrong: %+v", ev)
	}
	if doc.TraceEvents[2].Ph != "i" {
		t.Fatalf("flush should be an instant event: %+v", doc.TraceEvents[2])
	}
	if !strings.Contains(buf.String(), `"key \"q\""`) {
		t.Fatal("label not JSON-escaped")
	}
}

func TestGrowKeepsContents(t *testing.T) {
	_, clock := testClock()
	r := NewRecorder(clock)
	r.Charge(CauseBase, "a", 1, 0)
	r.Grow(128)
	r.Grow(64) // no-op shrink request
	if r.Len() != 1 || r.Spans()[0].Label != "a" {
		t.Fatal("Grow lost contents")
	}
	if cap(r.Spans()) < 128 {
		t.Fatalf("cap = %d, want >= 128", cap(r.Spans()))
	}
}

// TestAllocs proves the budget the hot paths rely on: a nil recorder
// allocates nothing, and an enabled pre-grown recorder allocates nothing
// per span at steady state.
func TestAllocs(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(200, func() {
		h := nilRec.Begin(CauseExec, "seg")
		nilRec.Charge(CauseTLBMiss, "seg", 25, 1)
		nilRec.End(h)
	}); n != 0 {
		t.Fatalf("nil recorder allocs/op = %v, want 0", n)
	}

	_, clock := testClock()
	r := NewRecorder(clock)
	r.Grow(1 << 16)
	if n := testing.AllocsPerRun(200, func() {
		h := r.Begin(CauseExec, "seg")
		r.Charge(CauseTLBMiss, "seg", 25, 1)
		r.ChargeSpan(CauseBase, "seg", 0, 10, 100, 0)
		r.End(h)
	}); n != 0 {
		t.Fatalf("pre-grown recorder allocs/op = %v, want 0", n)
	}
}
