// Package spans is the latency-attribution layer: a tree of cause-tagged
// cycle costs recorded at the moment the simulator charges them.
//
// The paper's payoff is not one latency number but its decomposition —
// §5.3 attributes the NT 3.51 vs NT 4.0 gap to TLB flushes, interrupts,
// and domain crossings from hardware counters. The simulator knows those
// causes exactly when it charges them, so this package captures them
// then, LTT-style (always-on, cheap, at the point of cost), instead of
// reverse-engineering them per experiment afterwards.
//
// Invariants:
//
//   - Disabled means absent. A nil *Recorder is a valid receiver for
//     every method and records nothing; every producer guards its span
//     emission behind a nil check, so a simulation without a recorder
//     runs the exact pre-span code path (byte-identical goldens, zero
//     extra allocations on the execute/cross hot path).
//   - Enabled stays allocation-bounded. Spans append to a slab that
//     doubles amortized; Grow pre-sizes it so steady-state recording
//     allocates nothing per span. Labels must be static or already-
//     retained strings — the recorder stores the string header only.
//   - Deterministic. The recorder reads time only from the simulated
//     clock it was built with; recording never perturbs simulation
//     state, so a traced run and an untraced run produce identical
//     simulated schedules.
package spans

import (
	"sort"
	"sync"

	"latlab/internal/simtime"
)

// Cause tags a span with why its time was spent. Container causes group
// child spans (an episode contains executes, an execute contains its
// penalty charges); leaf causes carry the actual costs, so summing leaf
// spans never double counts.
type Cause uint8

// Span causes. The order is presentation order in attribution tables.
const (
	// CauseEpisode is the root container of one interactive event: from
	// the input interrupt (message enqueue) to the handling thread's next
	// message-API call.
	CauseEpisode Cause = iota
	// CauseExec contains the charges of one cpu.Segment execution.
	CauseExec
	// CauseSyscall contains a synchronous kernel request (file I/O) from
	// invocation to unblock.
	CauseSyscall
	// CauseDiskIO contains one disk request's service-time decomposition.
	CauseDiskIO

	// CauseBase is a segment's warm base cycles (all TLB/cache hits).
	CauseBase
	// CauseTLBMiss is TLB refill penalty cycles (ITLB + DTLB).
	CauseTLBMiss
	// CauseCacheMiss is L2-miss / DRAM penalty cycles.
	CauseCacheMiss
	// CauseSegLoad is segment-register load penalty cycles (16-bit code).
	CauseSegLoad
	// CauseUnaligned is misaligned-access penalty cycles.
	CauseUnaligned
	// CauseDomainCross is the direct protection-domain-crossing cost; the
	// consequential refills surface as CauseTLBMiss spans afterwards.
	CauseDomainCross
	// CauseTLBFlush marks a TLB flush; Count is the entries discarded.
	// It costs no cycles itself — it manufactures future CauseTLBMiss.
	CauseTLBFlush
	// CauseModeSwitch is a user/kernel mode switch (no flush).
	CauseModeSwitch
	// CauseCtxSwitch contains context-switch work; base cycles charged
	// under it are attributed to it (penalty causes keep their identity).
	CauseCtxSwitch
	// CauseInterrupt contains interrupt-handler work; base cycles charged
	// under it are attributed to it (penalty causes keep their identity).
	CauseInterrupt
	// CauseSchedDelay is time a ready thread waited for the CPU.
	CauseSchedDelay
	// CauseQueueWait is time an input message waited in the queue before
	// the application retrieved it (the Fig. 1 missing time).
	CauseQueueWait

	// CauseDiskCtrl is per-request controller/command overhead.
	CauseDiskCtrl
	// CauseDiskSeek is head-movement time.
	CauseDiskSeek
	// CauseDiskRot is rotational latency.
	CauseDiskRot
	// CauseDiskXfer is media transfer time.
	CauseDiskXfer
	// CauseDiskRetry is retry backoff after a transient media error.
	CauseDiskRetry
	// CauseDiskStall is time the device was frozen (fault injection).
	CauseDiskStall
	// CauseDiskDegraded is service time beyond nominal under a degraded
	// service factor (fault injection).
	CauseDiskDegraded

	// CauseFSHit counts buffer-cache page hits (no time of its own).
	CauseFSHit
	// CauseFSMiss counts buffer-cache page misses (the time is the disk
	// spans the miss provokes).
	CauseFSMiss
	// CauseFSWrite counts pages written through.
	CauseFSWrite
	// CauseFSEvict counts pages evicted under forced pressure.
	CauseFSEvict

	// NumCauses is the number of defined causes.
	NumCauses
)

// causeNames is indexed by Cause; names are stable — they appear in
// attribution CSVs and Chrome traces.
var causeNames = [NumCauses]string{
	"episode", "exec", "syscall", "disk-io",
	"base", "tlb-miss", "cache-miss", "seg-load", "unaligned",
	"domain-cross", "tlb-flush", "mode-switch", "ctx-switch",
	"interrupt", "sched-delay", "queue-wait",
	"disk-ctrl", "disk-seek", "disk-rot", "disk-xfer",
	"disk-retry", "disk-stall", "disk-degraded",
	"fs-hit", "fs-miss", "fs-write", "fs-evict",
}

// String returns the stable attribution name of the cause.
func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "cause-unknown"
}

// CauseByName inverts String; ok reports whether name is known.
func CauseByName(name string) (Cause, bool) {
	for i, n := range causeNames {
		if n == name {
			return Cause(i), true
		}
	}
	return 0, false
}

// Container reports whether the cause groups children rather than
// carrying leaf cost; attribution sums skip containers.
func (c Cause) Container() bool {
	switch c {
	case CauseEpisode, CauseExec, CauseSyscall, CauseDiskIO,
		CauseInterrupt, CauseCtxSwitch:
		return true
	}
	return false
}

// noParent is the Parent index of a root span.
const noParent int32 = -1

// Span is one cause-tagged cost. Containers cover their children in
// time; leaves carry Cycles (compute causes), a wall duration (waiting
// causes), or only Count (event causes like flushes and cache hits).
type Span struct {
	// Parent indexes the enclosing span in the recorder's slab, -1 for a
	// root.
	Parent int32
	// Cause tags why the time was spent.
	Cause Cause
	// Label names the specific site (segment name, thread, file).
	Label string
	// Start and End bound the span in simulated time.
	Start, End simtime.Time
	// Cycles is the CPU cost charged, when the cause is a compute cost.
	Cycles int64
	// Count is the event count (misses, pages, flushed entries).
	Count int64
}

// Duration returns End-Start.
func (s Span) Duration() simtime.Duration { return s.End.Sub(s.Start) }

// Handle identifies an open span for End; the zero Handle is inert.
type Handle struct {
	idx int32
	ok  bool
}

// Recorder accumulates spans for one simulated machine. It is not safe
// for concurrent use (the simulator is single-threaded); a nil Recorder
// is a valid no-op receiver for every method.
type Recorder struct {
	now   func() simtime.Time
	spans []Span
	// stack holds the indices of open spans, innermost last. End removes
	// from anywhere in the stack (syscall spans of different threads can
	// close out of order), but the top is the common case.
	stack []int32
}

// NewRecorder builds a recorder reading simulated time from clock.
func NewRecorder(clock func() simtime.Time) *Recorder {
	return &Recorder{now: clock}
}

// Grow pre-sizes the slab for at least n spans, so steady-state
// recording allocates nothing.
func (r *Recorder) Grow(n int) {
	if r == nil || cap(r.spans) >= n {
		return
	}
	s := make([]Span, len(r.spans), n)
	copy(s, r.spans)
	r.spans = s
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Spans returns the recorded spans. The slice aliases the recorder;
// callers must not modify it while recording continues.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Reset discards all spans and open handles, keeping capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.stack = r.stack[:0]
}

// parent returns the innermost open span index.
func (r *Recorder) parent() int32 {
	if n := len(r.stack); n > 0 {
		return r.stack[n-1]
	}
	return noParent
}

// push appends a span and returns its index.
func (r *Recorder) push(s Span) int32 {
	idx := int32(len(r.spans))
	r.spans = append(r.spans, s)
	return idx
}

// Begin opens a span at the current simulated time.
func (r *Recorder) Begin(c Cause, label string) Handle {
	if r == nil {
		return Handle{}
	}
	return r.BeginAt(c, label, r.now())
}

// BeginAt opens a span starting at start (which may precede now — an
// episode starts at the input interrupt that was observed later).
func (r *Recorder) BeginAt(c Cause, label string, start simtime.Time) Handle {
	if r == nil {
		return Handle{}
	}
	idx := r.push(Span{Parent: r.parent(), Cause: c, Label: label, Start: start})
	r.stack = append(r.stack, idx)
	return Handle{idx: idx, ok: true}
}

// End closes the span at the current simulated time.
func (r *Recorder) End(h Handle) {
	if r == nil || !h.ok {
		return
	}
	r.EndAt(h, r.now())
}

// EndAt closes the span at end. Spans need not close in LIFO order
// (syscalls of different threads overlap); the handle is removed from
// wherever it sits in the open stack.
func (r *Recorder) EndAt(h Handle, end simtime.Time) {
	if r == nil || !h.ok {
		return
	}
	r.spans[h.idx].End = end
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == h.idx {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
}

// Charge records an instantaneous leaf at the current time: an event
// count (flush, cache hit) or a cost charged at a single instant.
func (r *Recorder) Charge(c Cause, label string, cycles, count int64) {
	if r == nil {
		return
	}
	now := r.now()
	r.push(Span{Parent: r.parent(), Cause: c, Label: label,
		Start: now, End: now, Cycles: cycles, Count: count})
}

// ChargeSpan records a completed leaf covering [start, end] as a child
// of the innermost open span.
func (r *Recorder) ChargeSpan(c Cause, label string, start, end simtime.Time, cycles, count int64) {
	if r == nil {
		return
	}
	r.push(Span{Parent: r.parent(), Cause: c, Label: label,
		Start: start, End: end, Cycles: cycles, Count: count})
}

// Attrib is a per-cause roll-up of leaf spans.
type Attrib struct {
	// Dur is attributed wall time per cause.
	Dur [NumCauses]simtime.Duration
	// Cycles is attributed CPU cost per cause.
	Cycles [NumCauses]int64
	// Count is the event count per cause.
	Count [NumCauses]int64
}

// Total returns the summed attributed duration across causes.
func (a *Attrib) Total() simtime.Duration {
	var t simtime.Duration
	for _, d := range a.Dur {
		t += d
	}
	return t
}

// CauseDurations returns the attributed duration per cause name,
// omitting causes with no attributed time. Keys match Cause.String(),
// the vocabulary the attribution CSV uses.
func (a *Attrib) CauseDurations() map[string]simtime.Duration {
	out := make(map[string]simtime.Duration)
	for c, d := range a.Dur {
		if d != 0 {
			out[Cause(c).String()] = d
		}
	}
	return out
}

// add accumulates leaf span s under cause c.
func (a *Attrib) add(c Cause, s Span) {
	a.Dur[c] += s.Duration()
	a.Cycles[c] += s.Cycles
	a.Count[c] += s.Count
}

// effectiveCause resolves the attribution cause of leaf span i: base
// cycles inside an interrupt or context-switch container belong to that
// container (its path length is the cost the paper attributes), while
// penalty causes (TLB, cache, segment, unaligned) keep their identity
// wherever they occur — a TLB miss is a TLB miss even inside a handler.
func effectiveCause(spans []Span, i int) Cause {
	c := spans[i].Cause
	if c != CauseBase {
		return c
	}
	for p := spans[i].Parent; p != noParent; p = spans[p].Parent {
		switch spans[p].Cause {
		case CauseInterrupt, CauseCtxSwitch:
			return spans[p].Cause
		case CauseEpisode:
			return c
		}
	}
	return c
}

// Attribution rolls all leaf spans up by effective cause.
func Attribution(spans []Span) Attrib {
	var a Attrib
	for i, s := range spans {
		if s.Cause.Container() {
			continue
		}
		a.add(effectiveCause(spans, i), s)
	}
	return a
}

// Episode is the attribution of one interactive event.
type Episode struct {
	// Label is the input-message kind handled ("WM_KEYDOWN").
	Label string
	// Start is the input interrupt; End is the handling thread's next
	// message-API call, so End-Start is the event's handling latency
	// including queue wait.
	Start, End simtime.Time
	// A sums the leaf spans recorded inside the episode.
	A Attrib
}

// Duration returns the episode's wall latency.
func (e Episode) Duration() simtime.Duration { return e.End.Sub(e.Start) }

// Episodes cuts the span log into per-event attributions, in event
// order, plus the roll-up of every leaf recorded outside any episode
// (background housekeeping, inter-event interrupts).
func Episodes(spans []Span) (eps []Episode, background Attrib) {
	// root[i] is the index of span i's root ancestor.
	root := make([]int32, len(spans))
	epIdx := make(map[int32]int)
	for i, s := range spans {
		if s.Parent == noParent {
			root[i] = int32(i)
			if s.Cause == CauseEpisode {
				epIdx[int32(i)] = len(eps)
				eps = append(eps, Episode{Label: s.Label, Start: s.Start, End: s.End})
			}
		} else {
			root[i] = root[s.Parent]
		}
	}
	for i, s := range spans {
		if s.Cause.Container() {
			continue
		}
		c := effectiveCause(spans, i)
		if j, ok := epIdx[root[i]]; ok {
			eps[j].A.add(c, s)
		} else {
			background.add(c, s)
		}
	}
	return eps, background
}

// Track pairs a name with one simulated machine's spans, for export.
type Track struct {
	// Name identifies the machine (persona @ profile).
	Name string
	// Spans is that machine's span log.
	Spans []Span
}

// Collector gathers tracks from concurrently-running simulations (the
// parallel experiment runner); it is safe for concurrent Add.
type Collector struct {
	mu     sync.Mutex
	tracks []Track
	seen   map[string]int
}

// Add appends a named track; duplicate names get a "#n" suffix so every
// rig of a suite run stays distinguishable.
func (c *Collector) Add(name string, spans []Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[string]int)
	}
	c.seen[name]++
	if n := c.seen[name]; n > 1 {
		name = name + "#" + itoa(n)
	}
	c.tracks = append(c.tracks, Track{Name: name, Spans: spans})
}

// Tracks returns the collected tracks sorted by name, so export order
// is deterministic whatever the completion order of a parallel run.
func (c *Collector) Tracks() []Track {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Track(nil), c.tracks...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// itoa is strconv.Itoa for small positive n without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 && i > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
