package spans

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// WriteChrome writes tracks in the Chrome trace-event JSON format, one
// trace process per track, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans with duration become complete ("X") events;
// instantaneous charges (flushes, cache hits) become instant ("i")
// events. Timestamps are microseconds of simulated time since boot.
//
// The encoding is hand-rolled rather than reflected so that output is
// deterministic field-for-field and export of large traces does not
// build an intermediate object per span.
func WriteChrome(w io.Writer, tracks []Track) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	for pi, tr := range tracks {
		pid := pi + 1
		comma()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		writeJSONString(bw, tr.Name)
		bw.WriteString(`}}`)
		for _, s := range tr.Spans {
			comma()
			writeEvent(bw, pid, s)
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeEvent emits one trace event for span s under pid.
func writeEvent(bw *bufio.Writer, pid int, s Span) {
	name := s.Label
	if name == "" {
		name = s.Cause.String()
	}
	bw.WriteString(`{"name":`)
	writeJSONString(bw, name)
	bw.WriteString(`,"cat":"`)
	bw.WriteString(s.Cause.String()) // cause names are JSON-safe literals
	bw.WriteString(`","ph":"`)
	if s.End > s.Start {
		bw.WriteString(`X","ts":`)
		writeMicros(bw, int64(s.Start))
		bw.WriteString(`,"dur":`)
		writeMicros(bw, int64(s.Duration()))
	} else {
		bw.WriteString(`i","s":"t","ts":`)
		writeMicros(bw, int64(s.Start))
	}
	bw.WriteString(`,"pid":`)
	bw.WriteString(strconv.Itoa(pid))
	bw.WriteString(`,"tid":0,"args":{"cycles":`)
	bw.WriteString(strconv.FormatInt(s.Cycles, 10))
	bw.WriteString(`,"count":`)
	bw.WriteString(strconv.FormatInt(s.Count, 10))
	bw.WriteString(`}}`)
}

// writeMicros writes a nanosecond quantity as decimal microseconds with
// nanosecond precision (e.g. 1500 ns -> "1.5").
func writeMicros(bw *bufio.Writer, ns int64) {
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	if frac := ns % 1000; frac != 0 {
		digits := strconv.FormatInt(frac+1000, 10)[1:] // zero-padded to 3
		digits = trimZeros(digits)
		bw.WriteByte('.')
		bw.WriteString(digits)
	}
}

// trimZeros drops trailing zeros of a fraction string.
func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	return s[:i]
}

// writeJSONString writes s as a JSON string literal.
func writeJSONString(bw *bufio.Writer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		bw.WriteString(`""`)
		return
	}
	bw.Write(b)
}
