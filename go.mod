module latlab

go 1.22
