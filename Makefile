# latlab — reproduction of "Using Latency to Evaluate Interactive System
# Performance" (OSDI '96). Standard targets:

GO ?= go

# Hot-path benchmarks gated against committed BENCH_<date>.json
# baselines. Runs fold BENCH_COUNT repeats per benchmark so benchgate
# records a variance; a regression must exceed the fractional floor
# AND be statistically significant at 95% to fail. The ns/op floor is
# wide by default because shared hosts drift through minutes-scale
# load regimes ±25% — tighten it (BENCH_NS_TOL=0.10) on quiet
# dedicated hardware. allocs/op is deterministic, so its floor stays
# tight; it is the reliable regression tripwire everywhere.
BENCH_GATE_PAT  = ^(BenchmarkSimulatorThroughput|BenchmarkBatchThroughput|BenchmarkExtraction|BenchmarkSchedulePop|BenchmarkCalendarSchedulePop|BenchmarkLRUTouch|BenchmarkWriteIdleCSV|BenchmarkSketchAdd)$$
BENCH_GATE_PKGS = . ./internal/eventq ./internal/mem ./internal/trace ./internal/stats
BENCH_NS_TOL    ?= 0.25
BENCH_ALLOC_TOL ?= 0.10
BENCH_COUNT     ?= 5
BENCH_RETRIES   ?= 3

# Coverage floor (percent) for the hardware-profile layer: the packages
# a machine.Profile threads through, plus the perception layer that
# interprets what they measure, must stay well exercised.
COVER_PKGS   = ./internal/machine ./internal/cpu ./internal/mem ./internal/disk ./internal/perception
COVER_FLOOR ?= 85

.PHONY: all build vet test race verify bench bench-baseline bench-check cover doclint fuzz-smoke corpus-check campaign-check campaign-resume-check campaign-demo batch-check modern-check repro quick examples clean

all: build verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: verify

race:
	$(GO) test -race ./...

# The CI gate: vet plus the full suite under the race detector (the
# runner is concurrent, so a plain `go test` can miss real bugs), then
# the benchmark regression gate and a short fuzz of the CSV parsers.
# Set LATLAB_SKIP_BENCH=1 to skip the benchmark gate (e.g. on loaded or
# incomparable hardware), LATLAB_SKIP_COVER=1 to skip the coverage
# floor, LATLAB_SKIP_FUZZ=1 to skip the fuzz smoke,
# LATLAB_SKIP_DOCLINT=1 to skip the documentation lint,
# LATLAB_SKIP_CORPUS=1 to skip the scenario-corpus replay,
# LATLAB_SKIP_CAMPAIGN=1 to skip the campaign-ledger replay,
# LATLAB_SKIP_RESUME=1 to skip the interrupt/resume reconvergence
# check, and LATLAB_SKIP_BATCH=1 to skip the batched-engine
# cross-check.
# LATLAB_SKIP_MODERN=1 to skip the modern-chapter replay.
# The campaign determinism and crash-safety tests themselves run under
# -race via the race target above.
verify: vet race
	@if [ -z "$$LATLAB_SKIP_DOCLINT" ]; then \
		$(MAKE) --no-print-directory doclint; \
	else \
		echo "doclint skipped (LATLAB_SKIP_DOCLINT set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_COVER" ]; then \
		$(MAKE) --no-print-directory cover; \
	else \
		echo "cover skipped (LATLAB_SKIP_COVER set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_BENCH" ]; then \
		$(MAKE) --no-print-directory bench-check; \
	else \
		echo "bench-check skipped (LATLAB_SKIP_BENCH set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_FUZZ" ]; then \
		$(MAKE) --no-print-directory fuzz-smoke; \
	else \
		echo "fuzz-smoke skipped (LATLAB_SKIP_FUZZ set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_CORPUS" ]; then \
		$(MAKE) --no-print-directory corpus-check; \
	else \
		echo "corpus-check skipped (LATLAB_SKIP_CORPUS set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_CAMPAIGN" ]; then \
		$(MAKE) --no-print-directory campaign-check; \
	else \
		echo "campaign-check skipped (LATLAB_SKIP_CAMPAIGN set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_RESUME" ]; then \
		$(MAKE) --no-print-directory campaign-resume-check; \
	else \
		echo "campaign-resume-check skipped (LATLAB_SKIP_RESUME set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_BATCH" ]; then \
		$(MAKE) --no-print-directory batch-check; \
	else \
		echo "batch-check skipped (LATLAB_SKIP_BATCH set)"; \
	fi
	@if [ -z "$$LATLAB_SKIP_MODERN" ]; then \
		$(MAKE) --no-print-directory modern-check; \
	else \
		echo "modern-check skipped (LATLAB_SKIP_MODERN set)"; \
	fi

# Documentation gate: every internal package needs a package comment and
# docs on its exported symbols, and every markdown link must resolve.
doclint:
	$(GO) run ./cmd/doclint

# Enforce the statement-coverage floor on the hardware-profile packages.
# Fails if any package dips below COVER_FLOOR percent or if a package
# stops being counted (e.g. its tests were deleted).
cover:
	@out=$$($(GO) test -cover $(COVER_PKGS)) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk -v floor=$(COVER_FLOOR) ' \
		/coverage:/ { n++; pct = $$5; sub(/%/, "", pct); \
			if (pct + 0 < floor) { printf "cover: %s below floor %d%%\n", $$2, floor; bad = 1 } } \
		END { if (n < 5) { printf "cover: expected 5 covered packages, saw %d\n", n; exit 1 }; exit bad }'

# 10 seconds of coverage-guided fuzzing per fuzzer: the CSV/JSONL
# parsers, the scenario DSL, and the differential event-queue check
# (calendar vs reference heap on random schedule/cancel programs).
# `go test` only accepts one -fuzz pattern at a time, so each fuzzer
# gets its own run.
FUZZ_TIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseIdleCSV$$' -fuzztime $(FUZZ_TIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzParseCounterCSV$$' -fuzztime $(FUZZ_TIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzParseMsgCSV$$' -fuzztime $(FUZZ_TIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzParseAttribCSV$$' -fuzztime $(FUZZ_TIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzScenarioParse$$' -fuzztime $(FUZZ_TIME) ./internal/scenario
	$(GO) test -run '^$$' -fuzz '^FuzzParseLedger$$' -fuzztime $(FUZZ_TIME) ./internal/campaign
	$(GO) test -run '^$$' -fuzz '^FuzzParseQuarantine$$' -fuzztime $(FUZZ_TIME) ./internal/campaign
	$(GO) test -run '^$$' -fuzz '^FuzzQueueEquivalence$$' -fuzztime $(FUZZ_TIME) ./internal/eventq

# Replay the committed scenario corpus (testdata/scenarios/) through
# the full CLI path and diff every rendering against its golden; also
# re-prove that the ext-faults JSON twins match their Go-registered
# counterparts byte for byte.
corpus-check:
	$(GO) test -run '^(TestCorpusGolden|TestRunCorpus)$$' ./cmd/latbench
	$(GO) test -run '^TestScenarioTwinsMatchGoRegistered$$' -short ./internal/experiments

# Re-run the committed demo campaign (10080 quick sessions) at a
# non-default worker count and require the ledger and the analyze
# report to reproduce byte for byte — the end-to-end determinism gate
# for the sharded engine, the sketches, and the analyzer.
CAMPAIGN_DIR  = testdata/campaigns
CAMPAIGN_JOBS ?= 3
campaign-check:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/campaign run -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $$tmp/demo-ledger.jsonl -quick -jobs $(CAMPAIGN_JOBS) && \
	cmp $(CAMPAIGN_DIR)/demo-ledger.jsonl $$tmp/demo-ledger.jsonl && \
	$(GO) run ./cmd/campaign analyze -ledger $$tmp/demo-ledger.jsonl \
		-out $$tmp/demo-analyze.txt && \
	cmp $(CAMPAIGN_DIR)/demo-analyze.txt $$tmp/demo-analyze.txt && \
	echo "campaign-check: demo ledger and analyze reproduce byte-for-byte (-jobs $(CAMPAIGN_JOBS))"

# Crash-safety gate: interrupt the demo campaign mid-run with SIGINT,
# prove the drained ledger is a clean prefix (repair is a no-op), then
# resume at a different worker count and require the final ledger to
# match the committed one byte for byte. Exit 3 = interrupted cleanly;
# exit 0 means the run won the race and finished, which is also fine.
campaign-resume-check:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/campaign ./cmd/campaign && \
	( LATLAB_CAMPAIGN_INJECT=sleep=40ms $$tmp/campaign run -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $$tmp/demo-ledger.jsonl -quick -jobs 2 & \
	  pid=$$!; sleep 1; kill -INT $$pid 2>/dev/null; wait $$pid; code=$$?; \
	  [ $$code -eq 0 ] || [ $$code -eq 3 ] || { echo "campaign-resume-check: interrupted run exited $$code, want 0 or 3"; exit 1; } ) && \
	$$tmp/campaign repair -ledger $$tmp/demo-ledger.jsonl && \
	$$tmp/campaign resume -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $$tmp/demo-ledger.jsonl -quick -jobs $(CAMPAIGN_JOBS) && \
	cmp $(CAMPAIGN_DIR)/demo-ledger.jsonl $$tmp/demo-ledger.jsonl && \
	echo "campaign-resume-check: interrupted + resumed ledger matches the committed one byte-for-byte"

# Cross-check the batched simulation core against the reference path:
# the golden corpus replayed under -engine batched (plus the in-batch
# session equivalence test), then the demo campaign on the reference
# engine and at a non-default batch width, all byte-compared against
# the committed artifacts. campaign-check covers the default
# batched/-batch 8 configuration, so together the engine/batch matrix
# is pinned end to end.
batch-check:
	$(GO) test -run '^TestCorpusGoldenBatched$$' ./cmd/latbench
	$(GO) test -run '^TestBatchSessionEquivalence$$' ./internal/experiments
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/campaign run -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $$tmp/ref-ledger.jsonl -quick -jobs $(CAMPAIGN_JOBS) -engine reference -batch 1 && \
	cmp $(CAMPAIGN_DIR)/demo-ledger.jsonl $$tmp/ref-ledger.jsonl && \
	$(GO) run ./cmd/campaign run -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $$tmp/b64-ledger.jsonl -quick -jobs $(CAMPAIGN_JOBS) -engine batched -batch 64 && \
	cmp $(CAMPAIGN_DIR)/demo-ledger.jsonl $$tmp/b64-ledger.jsonl && \
	echo "batch-check: reference engine and -batch 64 reproduce the committed ledger byte-for-byte"

# Replay the ext-modern experiments against their goldens and require
# every table quoted in the EXPERIMENTS.md "1996 methodology on 2026
# hardware" chapter to be a verbatim excerpt of those goldens — the
# chapter cannot drift from what the code produces.
modern-check:
	$(GO) test -run '^TestGoldenQuick$$/^ext-modern' ./cmd/latbench
	$(GO) test -run '^TestModernChapter$$' ./cmd/latbench
	@echo "modern-check: ext-modern goldens replay and the EXPERIMENTS.md chapter quotes them verbatim"

# Regenerate the committed demo campaign ledger and report after an
# intentional behaviour change. Commit both files.
campaign-demo:
	rm -f $(CAMPAIGN_DIR)/demo-ledger.jsonl
	$(GO) run ./cmd/campaign run -spec $(CAMPAIGN_DIR)/demo.json \
		-ledger $(CAMPAIGN_DIR)/demo-ledger.jsonl -quick -jobs $(CAMPAIGN_JOBS)
	$(GO) run ./cmd/campaign analyze -ledger $(CAMPAIGN_DIR)/demo-ledger.jsonl \
		-out $(CAMPAIGN_DIR)/demo-analyze.txt

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Record today's hot-path numbers as the new baseline. Commit the file.
bench-baseline:
	$(GO) test -bench '$(BENCH_GATE_PAT)' -benchmem -count=$(BENCH_COUNT) -run '^$$' $(BENCH_GATE_PKGS) \
		| $(GO) run ./cmd/benchgate -record BENCH_$$(date +%Y-%m-%d).json

# Fail if the hot paths regressed vs the newest committed baseline.
# Pass BENCH_NS_TOL/BENCH_ALLOC_TOL to loosen the single-sample gates,
# or add `-skip-ns -allow-cpu-mismatch` via BENCH_CHECK_FLAGS when
# comparing across machines (benchgate refuses a cross-cpu ns/op
# comparison outright). The gate retries up to BENCH_RETRIES attempts:
# a genuine regression is code-driven and fails every attempt, while a
# transient load spike on a shared host fails attempts independently,
# so bounded retries filter ambient noise without loosening the
# statistical gate itself.
bench-check:
	@i=1; while :; do \
		if $(GO) test -bench '$(BENCH_GATE_PAT)' -benchmem -count=$(BENCH_COUNT) -run '^$$' $(BENCH_GATE_PKGS) \
			| $(GO) run ./cmd/benchgate -check -ns-tol $(BENCH_NS_TOL) -alloc-tol $(BENCH_ALLOC_TOL) $(BENCH_CHECK_FLAGS); then \
			break; \
		fi; \
		if [ $$i -ge $(BENCH_RETRIES) ]; then \
			echo "bench-check: regression persisted across $(BENCH_RETRIES) attempts"; exit 1; \
		fi; \
		echo "bench-check: attempt $$i/$(BENCH_RETRIES) regressed; retrying in case of host noise"; \
		i=$$((i+1)); \
	done

# Regenerate every table and figure at paper-sized workloads.
repro:
	$(GO) run ./cmd/latbench

# Fast smoke of the full pipeline.
quick:
	$(GO) run ./cmd/latbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/notepad
	$(GO) run ./examples/powerpoint
	$(GO) run ./examples/wordstudy
	$(GO) run ./examples/thinkwait

clean:
	$(GO) clean ./...
