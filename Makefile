# latlab — reproduction of "Using Latency to Evaluate Interactive System
# Performance" (OSDI '96). Standard targets:

GO ?= go

.PHONY: all build vet test race verify bench repro quick examples clean

all: build verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: verify

race:
	$(GO) test -race ./...

# The CI gate: vet plus the full suite under the race detector (the
# runner is concurrent, so a plain `go test` can miss real bugs).
verify: vet race

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Regenerate every table and figure at paper-sized workloads.
repro:
	$(GO) run ./cmd/latbench

# Fast smoke of the full pipeline.
quick:
	$(GO) run ./cmd/latbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/notepad
	$(GO) run ./examples/powerpoint
	$(GO) run ./examples/wordstudy
	$(GO) run ./examples/thinkwait

clean:
	$(GO) clean ./...
