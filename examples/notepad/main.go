// Notepad session: the paper's §5.1 benchmark on all three simulated
// operating systems, showing the Fig. 7 comparison — including its
// anomaly: Windows 95 has the smallest cumulative event latency yet the
// largest elapsed busy time, because the Test driver's WM_QUEUESYNC
// messages cost most there.
//
//	go run ./examples/notepad
package main

import (
	"fmt"
	"os"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
	"latlab/internal/viz"
)

func main() {
	text := input.SampleText(400)
	for _, p := range persona.All() {
		sys := system.New(system.Config{Persona: p})
		probe := core.AttachProbe(sys.K)
		idle := core.StartIdleLoop(sys.K, 200_000)
		notepad := apps.NewNotepad(sys, 250_000)

		// Type at ~100 wpm with a page-down at the end; Test-style input
		// (WM_QUEUESYNC after every event).
		evs := input.TypeText(simtime.Time(300*simtime.Millisecond), text, 120*simtime.Millisecond)
		last := evs[len(evs)-1].At
		evs = append(evs, input.KeyDowns(last.Add(simtime.Second), input.VKPageDown, 3, 400*simtime.Millisecond)...)
		script := &input.Script{Events: evs, QueueSync: true}
		script.Install(sys)
		sys.K.Run(script.End().Add(2 * simtime.Second))

		events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{
			Thread:         notepad.Thread().ID(),
			StripQueueSync: true, // remove the Test artifact, as the paper does
		})
		rep := core.NewReport(events, simtime.Duration(sys.K.Now()))

		fmt.Printf("%s: %d events, cumulative latency %v, busy elapsed %v\n",
			p.Name, len(events), rep.TotalLatency(), sys.K.NonIdleBusyTime())
		fmt.Printf("  %.0f%% of latency from events under 10ms; longest event %v\n",
			100*rep.FractionBelow(10), maxLatency(events))
		if err := viz.CumulativeCurve(os.Stdout, "  cumulative latency",
			rep.CumulativeCurve(), rep.Elapsed, 70, 6); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		sys.Shutdown()
	}
}

func maxLatency(events []core.Event) simtime.Duration {
	var m simtime.Duration
	for _, e := range events {
		if e.Latency > m {
			m = e.Latency
		}
	}
	return m
}
