// PowerPoint scenario: the paper's §5.2 long-latency task — cold start,
// open a 46-slide deck with three embedded graph objects, browse, edit
// each object in place, save — driven with completion-paced input and
// measured with the idle-loop methodology. Prints the Table-1-style
// long-event list and the time series of events over 50 ms (Fig. 12).
//
//	go run ./examples/powerpoint [-persona nt40]
package main

import (
	"flag"
	"fmt"
	"os"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
	"latlab/internal/viz"
)

func main() {
	personaName := flag.String("persona", "nt40", "nt351, nt40, or w95")
	flag.Parse()
	p, ok := persona.ByShort(*personaName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown persona %q\n", *personaName)
		os.Exit(1)
	}

	sys := system.New(system.Config{Persona: p})
	defer sys.Shutdown()
	probe := core.AttachProbe(sys.K)
	idle := core.StartIdleLoop(sys.K, 300_000)
	ppt := apps.NewPowerpoint(sys, apps.DefaultPowerpointParams())

	// Completion-paced task: each input goes in 300 ms after the app
	// quiesces from the previous one.
	type stepT struct {
		kind  kernel.MsgKind
		param int64
	}
	var steps []stepT
	steps = append(steps, stepT{kernel.WMCommand, apps.CmdLaunch}, stepT{kernel.WMCommand, apps.CmdOpen})
	for i := 0; i < 3; i++ {
		for j := 0; j < []int{9, 10, 10}[i]; j++ {
			steps = append(steps, stepT{kernel.WMKeyDown, input.VKPageDown})
		}
		steps = append(steps, stepT{kernel.WMCommand, apps.CmdEditObject + int64(i)})
		steps = append(steps, stepT{kernel.WMChar, '7'}, stepT{kernel.WMChar, '3'})
		steps = append(steps, stepT{kernel.WMCommand, apps.CmdEndEdit})
	}
	steps = append(steps, stepT{kernel.WMCommand, apps.CmdSave})

	i := 0
	quiet := func() bool {
		f := sys.Focus()
		return f.State() == kernel.StateBlockedMsg && f.QueueLen() == 0 && sys.K.SyncIOOutstanding() == 0
	}
	for i < len(steps) && sys.K.Now() < simtime.Time(300*simtime.Second) {
		sys.K.RunFor(20 * simtime.Millisecond)
		if quiet() {
			st := steps[i]
			sys.K.RunFor(300 * simtime.Millisecond)
			sys.K.At(sys.K.Now()+1, func(simtime.Time) { sys.Inject(st.kind, st.param, true) })
			sys.K.RunFor(40 * simtime.Millisecond)
			i++
		}
	}
	// Let the final save run to completion, plus trailing idle time so
	// the extractor sees the system quiesce.
	for !quiet() && sys.K.Now() < simtime.Time(300*simtime.Second) {
		sys.K.RunFor(200 * simtime.Millisecond)
	}
	sys.K.RunFor(2 * simtime.Second)

	events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{
		Thread: ppt.Thread().ID(), StripQueueSync: true,
	})

	fmt.Printf("%s — PowerPoint task: %d events, %d page-downs, %d OLE edits, %d save\n\n",
		p.Name, len(events), ppt.PageDowns, ppt.Edits, ppt.Saves)
	fmt.Println("events with latency over one second:")
	for _, e := range viz.SortedByLatency(events) {
		if e.Latency < simtime.Second {
			break
		}
		fmt.Printf("  %-14s at %8.1fs   latency %6.3fs\n",
			e.Kind, e.Enqueued.Seconds(), e.Latency.Seconds())
	}
	fmt.Println()
	long := core.FilterLatencyAbove(events, 50*simtime.Millisecond)
	if err := viz.TimeSeries(os.Stdout, "events over 50ms (Fig. 12 view)",
		long, 1000, 100, 10); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
