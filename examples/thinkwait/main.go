// Think/wait decomposition: run the complete Fig. 2 finite state machine
// over a mixed session — typing bursts, composition pauses, a synchronous
// document load, and an asynchronous background read — and print how the
// session splits into think time and wait time per system.
//
// The paper implements only part of this FSM ("Implementation of the
// full FSM requires additional system support for monitoring I/O and
// message queue state transitions"); the simulated kernel provides those
// hooks, so this example runs the complete design.
//
//	go run ./examples/thinkwait
package main

import (
	"fmt"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

func main() {
	fmt.Println("Fig. 2 think/wait FSM over a mixed editing session")
	fmt.Printf("\n  %-18s %10s %10s %8s %13s\n", "system", "think", "wait", "wait%", "transitions")

	for _, p := range persona.All() {
		sys := system.New(system.Config{Persona: p})
		probe := core.AttachProbe(sys.K)
		core.StartIdleLoop(sys.K, 200_000)

		doc := sys.K.Cache().AddFile("doc", 350_000, 200)
		work := cpu.Segment{Name: "edit", BaseCycles: 250_000,
			CodePages: []uint64{420, 421}, DataPages: []uint64{1420}}
		app := sys.SpawnApp("editor", func(tc *kernel.TC) {
			// Synchronous load: wait time with an idle CPU — the case a
			// CPU-only classifier would call "think".
			tc.ReadFile(doc, 0, 120)
			// Kick off a background (asynchronous) preload of the rest.
			tc.ReadFileAsync(doc, 120, 80, kernel.WMIdleWork, 0)
			for {
				m := tc.GetMessage()
				switch m.Kind {
				case kernel.WMQuit:
					return
				case kernel.WMIdleWork:
					// Background completion: no user-visible work.
				case kernel.WMChar, kernel.WMKeyDown:
					tc.Compute(work)
					sys.Win.TextOut(tc, 1)
				}
			}
		})
		sys.Win.BindApp([]uint64{420, 421})

		ty := input.NewTypist(42, 80)
		script := &input.Script{Events: ty.Type(simtime.Time(3*simtime.Second), input.SampleText(120))}
		script.Install(sys)
		end := sys.K.Run(script.End().Add(2 * simtime.Second))

		f := core.DriveFSM(probe, app.ID(), end)
		think, wait := f.ThinkTime(), f.WaitTime()
		fmt.Printf("  %-18s %9.2fs %9.2fs %7.1f%% %13d\n",
			p.Name, think.Seconds(), wait.Seconds(),
			100*float64(wait)/float64(think+wait), len(f.Transitions()))
		sys.Shutdown()
	}

	fmt.Println("\nThe synchronous load counts as wait time even though the CPU is idle;")
	fmt.Println("the asynchronous preload counts as background and never blocks the user.")
}
