// Quickstart: measure the event-handling latency of a tiny interactive
// application with latlab's idle-loop methodology.
//
// It boots a simulated Windows NT 4.0 machine, replaces the idle loop
// with the calibrated instrument, attaches the message-API monitor, runs
// a message-driven app under keystroke input, and extracts per-event
// latencies — the paper's core technique end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
	"latlab/internal/viz"
)

func main() {
	// 1. Boot a machine with the NT 4.0 personality.
	sys := system.New(system.Config{Persona: persona.NT40()})
	defer sys.Shutdown()

	// 2. Install the measurement methodology: probe + idle loop.
	probe := core.AttachProbe(sys.K)
	idle := core.StartIdleLoop(sys.K, 50_000)

	// 3. A minimal interactive application: 3 ms of work per keystroke,
	//    then echo the character through the window system.
	work := cpu.Segment{Name: "app-work", BaseCycles: 300_000,
		Instructions: 180_000, DataRefs: 70_000,
		CodePages: []uint64{400, 401}, DataPages: []uint64{1400}}
	app := sys.SpawnApp("demo", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			tc.Compute(work)
			sys.Win.TextOut(tc, 1)
		}
	})
	sys.Win.BindApp([]uint64{400, 401})

	// 4. Type "hello latency" at 100 words per minute.
	script := &input.Script{
		Events: input.TypeText(simtime.Time(200*simtime.Millisecond),
			"hello latency", 120*simtime.Millisecond),
	}
	script.Install(sys)
	sys.K.Run(script.End().Add(simtime.Second))

	// 5. Extract events by correlating the idle-loop trace with the
	//    message-API trace.
	events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{
		Thread: app.ID(),
	})

	fmt.Printf("measured %d keystroke events:\n\n", len(events))
	for i, e := range events {
		fmt.Printf("  key %2d: enqueued %8v  latency %8v  (busy %v)\n",
			i+1, e.Enqueued, e.Latency, e.Busy)
	}
	rep := core.NewReport(events, simtime.Duration(sys.K.Now()))
	s := rep.Summary()
	fmt.Printf("\nmean latency %.2fms, std %.2fms; ground-truth busy time %v\n",
		s.Mean, s.StdDev, sys.K.NonIdleBusyTime())

	fmt.Println()
	if err := viz.Histogram(os.Stdout, "latency histogram (log count)",
		rep.Histogram(0, 10, 10), 30); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
