// Word study: reproduce the paper's §5.4 comparison of Microsoft-Test-
// driven input against hand-generated typing on the Word model, showing
// how the driver's WM_QUEUESYNC synchronization messages inflate
// measured keystroke latencies (≈85 ms vs ≈32 ms) while hand input shows
// more background activity and much longer carriage returns.
//
//	go run ./examples/wordstudy
package main

import (
	"fmt"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
	"latlab/internal/system"
)

func run(testDriven bool) (typicalMs float64, crMaxMs float64, bgBursts int) {
	sys := system.New(system.Config{Persona: persona.NT351()})
	defer sys.Shutdown()
	probe := core.AttachProbe(sys.K)
	idle := core.StartIdleLoop(sys.K, 400_000)
	word := apps.NewWord(sys, apps.DefaultWordParams())

	text := input.SampleText(180) + "\n" + input.SampleText(120) + "\n" + input.SampleText(60)
	var evs []input.Event
	if testDriven {
		// Test replays with specified (varied) pauses and posts
		// WM_QUEUESYNC after each event.
		evs = input.NewTypist(7, 65).Type(simtime.Time(300*simtime.Millisecond), text)
	} else {
		evs = input.NewTypist(8, 65).Type(simtime.Time(300*simtime.Millisecond), text)
	}
	script := &input.Script{Events: evs, QueueSync: testDriven}
	script.Install(sys)
	sys.K.Run(script.End().Add(3 * simtime.Second))

	events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{
		Thread: word.Thread().ID(),
	})
	var chars []float64
	for _, e := range events {
		ms := e.Latency.Milliseconds()
		if e.Kind == kernel.WMChar && ms < 190 {
			chars = append(chars, ms)
		}
		if ms > crMaxMs {
			crMaxMs = ms
		}
	}
	return stats.Summarize(chars).Mean, crMaxMs, word.BackgroundBursts
}

func main() {
	testTypical, testMax, testBG := run(true)
	handTypical, handMax, handBG := run(false)

	fmt.Println("Word on Windows NT 3.51 — Microsoft Test vs hand-generated input (§5.4)")
	fmt.Printf("\n  %-28s %10s %10s\n", "", "Test", "hand")
	fmt.Printf("  %-28s %8.1fms %8.1fms\n", "typical keystroke latency", testTypical, handTypical)
	fmt.Printf("  %-28s %8.1fms %8.1fms\n", "longest event (CR)", testMax, handMax)
	fmt.Printf("  %-28s %10d %10d\n", "background spell bursts", testBG, handBG)
	fmt.Println("\nThe Test driver's WM_QUEUESYNC after every keystroke forces Word to flush")
	fmt.Println("its deferred coroutine work synchronously: keystrokes look ~3x slower, but")
	fmt.Println("carriage returns look faster because the layout backlog never accumulates.")
}
