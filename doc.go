// Package latlab reproduces "Using Latency to Evaluate Interactive
// System Performance" (Endo, Wang, Chen, Seltzer; OSDI '96) as a Go
// library: the paper's latency-measurement methodology implemented over
// a deterministic discrete-event simulation of its experimental
// platform.
//
// The root package holds the benchmark harness (bench_test.go, one
// benchmark per paper table/figure plus ablations) and smoke tests for
// the runnable examples. The library lives under internal/:
//
//   - internal/core — the methodology: idle-loop instrument, message-API
//     monitor, think/wait FSM, event extraction, latency reports,
//     utilization profiles, hardware-counter attribution.
//   - internal/kernel, internal/cpu, internal/mem, internal/disk,
//     internal/fscache — the simulated machine and operating system.
//   - internal/persona, internal/winsys, internal/system — the three
//     Windows personalities (NT 3.51, NT 4.0, Windows 95) and their
//     window-system architectures.
//   - internal/apps, internal/ole, internal/input — the benchmark
//     applications and input drivers.
//   - internal/experiments — one registered experiment per paper
//     artifact, consumed by cmd/latbench, tests, and benchmarks.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package latlab
