package latlab

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every example main, asserting on a
// fragment of its expected output — the examples are documentation and
// must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile+run; skipped in -short")
	}
	cases := []struct {
		path string
		args []string
		want string
	}{
		{"./examples/quickstart", nil, "mean latency"},
		{"./examples/notepad", nil, "Windows 95"},
		{"./examples/powerpoint", []string{"-persona", "nt40"}, "events with latency over one second"},
		{"./examples/wordstudy", nil, "typical keystroke latency"},
		{"./examples/thinkwait", nil, "wait%"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.path}, c.args...)
			cmd := exec.Command("go", args...)
			start := time.Now()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed after %v: %v\n%s", c.path, time.Since(start), err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%s output missing %q:\n%s", c.path, c.want, out)
			}
		})
	}
}
