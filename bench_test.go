// Package latlab's benchmark harness: one testing.B benchmark per table
// and figure in the paper's evaluation, each regenerating the artifact
// at paper-sized workloads and reporting its headline quantity as a
// custom metric, plus ablation benchmarks for the design choices
// DESIGN.md calls out (crossing flushes, 16-bit costs, Test's
// WM_QUEUESYNC, buffer-cache warming).
//
// Run with:
//
//	go test -bench=. -benchmem
package latlab

import (
	"context"
	"io"
	"testing"
	"time"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/experiments"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
	"latlab/internal/trace"
)

func cfg() experiments.Config { return experiments.DefaultConfig() }

// runExperiment executes the registered experiment b.N times, rendering
// to io.Discard (rendering cost is part of regenerating the artifact).
func runExperiment(b *testing.B, id string) experiments.Result {
	b.Helper()
	spec, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = spec.Run(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFig1IdleLoopValidation(b *testing.B) {
	r := runExperiment(b, "fig1").(*experiments.Fig1Result)
	b.ReportMetric(r.IdleLoop.Mean, "idleloop-ms")
	b.ReportMetric(r.Conventional.Mean, "conventional-ms")
	b.ReportMetric(r.DiscrepancyMs, "missed-ms")
}

func BenchmarkFig3IdleProfiles(b *testing.B) {
	r := runExperiment(b, "fig3").(*experiments.Fig3Result)
	for _, s := range r.Systems {
		if s.Persona == "Windows NT 4.0" {
			b.ReportMetric(s.ClockOverheadCycles, "nt40-clock-cycles")
		}
	}
}

func BenchmarkFig4WindowMaximize(b *testing.B) {
	r := runExperiment(b, "fig4").(*experiments.Fig4Result)
	b.ReportMetric(r.Event.Latency.Milliseconds(), "maximize-ms")
	b.ReportMetric(float64(len(r.AnimationSpikes)), "animation-spikes")
}

func BenchmarkFig5RawTrace(b *testing.B) {
	r := runExperiment(b, "fig5").(*experiments.Fig5Result)
	b.ReportMetric(float64(len(r.Events)), "events")
}

func BenchmarkFig6SimpleEvents(b *testing.B) {
	r := runExperiment(b, "fig6").(*experiments.Fig6Result)
	for _, s := range r.Systems {
		switch s.Persona {
		case "Windows NT 4.0":
			b.ReportMetric(s.Keystroke.Mean, "nt40-key-ms")
		case "Windows 95":
			b.ReportMetric(s.Keystroke.Mean, "w95-key-ms")
			b.ReportMetric(s.Click.Mean, "w95-click-ms")
		}
	}
}

func BenchmarkFig7Notepad(b *testing.B) {
	r := runExperiment(b, "fig7").(*experiments.Fig7Result)
	for _, s := range r.Systems {
		if s.Persona == "Windows 95" {
			b.ReportMetric(s.Report.TotalLatency().Milliseconds(), "w95-cumlat-ms")
			b.ReportMetric(100*s.FractionUnder10ms, "w95-under10ms-pct")
		}
	}
}

func BenchmarkFig8Powerpoint(b *testing.B) {
	r := runExperiment(b, "fig8").(*experiments.Fig8Result)
	for _, s := range r.Systems {
		if s.Persona == "Windows NT 4.0" {
			b.ReportMetric(float64(len(s.Report.Events)), "nt40-long-events")
		}
	}
}

func BenchmarkTable1LongEvents(b *testing.B) {
	r := runExperiment(b, "table1").(*experiments.Table1Result)
	for _, row := range r.Rows {
		switch row.Event {
		case "Save document":
			b.ReportMetric(row.NT40Sec, "save-nt40-s")
			b.ReportMetric(row.NT351Sec, "save-nt351-s")
		case "Start Powerpoint":
			b.ReportMetric(row.NT40Sec, "start-nt40-s")
		}
	}
}

func BenchmarkFig9PageDownCounters(b *testing.B) {
	r := runExperiment(b, "fig9").(*experiments.CounterResult)
	b.ReportMetric(100*r.TLBFraction351, "tlb-share-pct")
	b.ReportMetric(r.W95TLBRatio, "w95-tlb-ratio")
}

func BenchmarkFig10OLECounters(b *testing.B) {
	r := runExperiment(b, "fig10").(*experiments.CounterResult)
	b.ReportMetric(100*r.TLBFraction351, "tlb-share-pct")
}

func BenchmarkFig11Word(b *testing.B) {
	r := runExperiment(b, "fig11").(*experiments.Fig11Result)
	for _, s := range r.Systems {
		if s.Persona == "Windows NT 4.0" {
			b.ReportMetric(s.Summary.Mean, "nt40-mean-ms")
		} else {
			b.ReportMetric(s.Summary.Mean, "nt351-mean-ms")
		}
	}
}

func BenchmarkTable2Interarrival(b *testing.B) {
	r := runExperiment(b, "table2").(*experiments.Table2Result)
	b.ReportMetric(float64(r.Rows[0].Count), "over100ms")
	b.ReportMetric(float64(r.Rows[1].Count), "over110ms")
	b.ReportMetric(float64(r.Rows[2].Count), "over120ms")
}

func BenchmarkFig12TimeSeries(b *testing.B) {
	r := runExperiment(b, "fig12").(*experiments.Fig12Result)
	for _, s := range r.Systems {
		if s.Persona == "Windows NT 4.0" {
			b.ReportMetric(s.MeanInterarrivalMs/1000, "nt40-interarrival-s")
		}
	}
}

func BenchmarkS54TestVsHand(b *testing.B) {
	r := runExperiment(b, "s54").(*experiments.S54Result)
	b.ReportMetric(r.TestTypical.Mean, "test-ms")
	b.ReportMetric(r.HandTypical.Mean, "hand-ms")
}

// --- Ablation benchmarks -------------------------------------------------
//
// Each ablation switches one modelled mechanism off and reports the same
// headline number, so the contribution of the mechanism is visible in
// the benchmark output.

// keystrokeLatency measures the mean unbound-keystroke latency under p.
func keystrokeLatency(b *testing.B, p persona.P) float64 {
	b.Helper()
	sys := system.New(system.Config{Persona: p})
	defer sys.Shutdown()
	probe := core.AttachProbe(sys.K)
	idle := core.StartIdleLoop(sys.K, 60_000)
	app := sys.SpawnApp("bench", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			sys.Win.KeyTranslate(tc)
			sys.Win.DefWindowProc(tc)
		}
	})
	sys.Win.BindApp([]uint64{345, 346})
	for i := 0; i < 20; i++ {
		at := simtime.Time(200+int64(i)*250) * simtime.Time(simtime.Millisecond)
		sys.K.At(at, func(simtime.Time) { sys.Inject(kernel.WMKeyDown, 'a', false) })
	}
	sys.K.Run(simtime.Time(6 * simtime.Second))
	events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{Thread: app.ID()})
	var sum float64
	for _, e := range events[1:] { // drop the cold trial
		sum += e.Latency.Milliseconds()
	}
	return sum / float64(len(events)-1)
}

// BenchmarkAblationCrossingFlush quantifies the NT 3.51 server
// architecture: the same keystroke with and without TLB flushes on
// protection-domain crossings.
func BenchmarkAblationCrossingFlush(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		p := persona.NT351()
		with = keystrokeLatency(b, p)
		noFlush := p
		// Wholesale cost-model override: default hardware penalties but a
		// free crossing (DomainCrossingCycles alone cannot express "zero").
		noFlush.Kernel.Penalties = cpu.DefaultPenalties()
		noFlush.Kernel.Penalties.DomainCrossing = 0
		noFlush.Kernel.DomainCrossingCycles = 0
		noFlush.Kernel.FlushOnProcessSwitch = false
		without = keystrokeLatency(b, noFlush)
	}
	b.ReportMetric(with, "with-flush-ms")
	b.ReportMetric(without, "no-crossing-cost-ms")
}

// BenchmarkAblation16BitCosts quantifies the Windows 95 16-bit signature
// (segment loads, unaligned accesses, wider data windows).
func BenchmarkAblation16BitCosts(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		p := persona.W95()
		with = keystrokeLatency(b, p)
		clean := p
		clean.SegLoadsPerKCycle = 0
		clean.UnalignedPerKCycle = 0
		clean.DataWindowScale = 1.0
		without = keystrokeLatency(b, clean)
	}
	b.ReportMetric(with, "w95-ms")
	b.ReportMetric(without, "w95-no16bit-ms")
}

// BenchmarkAblationQueueSync quantifies the Microsoft Test artifact on
// Notepad: identical input with and without WM_QUEUESYNC, without
// stripping.
func BenchmarkAblationQueueSync(b *testing.B) {
	run := func(sync bool) simtime.Duration {
		sys := system.New(system.Config{Persona: persona.W95()})
		defer sys.Shutdown()
		probe := core.AttachProbe(sys.K)
		idle := core.StartIdleLoop(sys.K, 100_000)
		n := apps.NewNotepad(sys, 250_000)
		script := &input.Script{
			Events:    input.TypeText(simtime.Time(300*simtime.Millisecond), input.SampleText(60), 120*simtime.Millisecond),
			QueueSync: sync,
		}
		script.Install(sys)
		sys.K.Run(script.End().Add(simtime.Second))
		events := core.Extract(idle.Samples(), probe.Msgs, core.ExtractOptions{Thread: n.Thread().ID()})
		var total simtime.Duration
		for _, e := range events {
			total += e.Latency
		}
		return total
	}
	var with, without simtime.Duration
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with.Milliseconds(), "with-queuesync-ms")
	b.ReportMetric(without.Milliseconds(), "without-ms")
}

// BenchmarkAblationBufferCache quantifies buffer-cache warming on OLE
// activation: cold vs warm session cost.
func BenchmarkAblationBufferCache(b *testing.B) {
	var cold, warm simtime.Duration
	for i := 0; i < b.N; i++ {
		sys := system.New(system.Config{Persona: persona.NT40()})
		ppt := apps.NewPowerpoint(sys, apps.DefaultPowerpointParams())
		_ = ppt
		drive := func(kind kernel.MsgKind, param int64) simtime.Duration {
			start := sys.K.Now()
			sys.K.At(sys.K.Now()+1, func(simtime.Time) { sys.Inject(kind, param, false) })
			for {
				sys.K.RunFor(10 * simtime.Millisecond)
				f := sys.Focus()
				if f.State() == kernel.StateBlockedMsg && f.QueueLen() == 0 &&
					sys.K.SyncIOOutstanding() == 0 {
					break
				}
			}
			return sys.K.Now().Sub(start)
		}
		drive(kernel.WMCommand, apps.CmdLaunch)
		drive(kernel.WMCommand, apps.CmdOpen)
		cold = drive(kernel.WMCommand, apps.CmdEditObject+0)
		drive(kernel.WMCommand, apps.CmdEndEdit)
		drive(kernel.WMCommand, apps.CmdEditObject+0) // object data now warm
		drive(kernel.WMCommand, apps.CmdEndEdit)
		warm = drive(kernel.WMCommand, apps.CmdEditObject+0)
		sys.Shutdown()
	}
	b.ReportMetric(cold.Seconds(), "cold-activate-s")
	b.ReportMetric(warm.Seconds(), "warm-activate-s")
}

// BenchmarkSimulatorThroughput reports raw simulator speed: simulated
// seconds per wall second for an idle NT 4.0 machine with the instrument
// running.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := system.New(system.Config{Persona: persona.NT40()})
		core.StartIdleLoop(sys.K, 1_100_000)
		sys.K.Run(simtime.Time(10 * simtime.Second))
		sys.Shutdown()
	}
	b.ReportMetric(10*float64(b.N), "sim-seconds")
}

// idleBenchSession drives one idle machine to a fixed horizon — the
// minimal BatchSession, so BenchmarkBatchThroughput measures the batch
// engine itself rather than a scenario program.
type idleBenchSession struct {
	sys     *system.System
	horizon simtime.Time
	done    bool
}

func (s *idleBenchSession) Sys() *system.System { return s.sys }
func (s *idleBenchSession) NextTarget() simtime.Time {
	if s.done {
		return simtime.Never
	}
	return s.horizon
}
func (s *idleBenchSession) OnTarget() { s.done = true }

// BenchmarkBatchThroughput reports multi-machine simulator speed on the
// batched path: per op, eight idle NT 4.0 machines each simulated for
// 30 seconds (a campaign-session-sized horizon, so per-machine boot
// cost amortises as it does in a sweep) under the calendar queue with
// analytic idle-span elision, instrument buffers recording into batch
// arenas reused across ops. BenchmarkSimulatorThroughput stays the
// single-machine reference path; machine-sim-s/s is the headline
// machines/sec throughput and x-vs-reference the in-process speedup
// over untimed reference-path runs of the same workload on this host.
func BenchmarkBatchThroughput(b *testing.B) {
	const (
		lanes   = 8
		bufCap  = 1_100_000
		horizon = simtime.Time(30 * simtime.Second)
	)
	batch := system.NewBatch(lanes)
	sessions := make([]*idleBenchSession, lanes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for slot := 0; slot < lanes; slot++ {
			sys := system.New(system.Config{Persona: persona.NT40(), Engine: kernel.BatchedEngine()})
			arena := batch.Arena(slot)
			if cap(*arena) < bufCap {
				*arena = make([]trace.IdleSample, 0, bufCap)
			}
			core.StartIdleLoopBuffer(sys.K, trace.NewBufferBacked((*arena)[:0]))
			sessions[slot] = &idleBenchSession{sys: sys, horizon: horizon}
			batch.Open(slot, sessions[slot])
		}
		batch.Run()
		for _, s := range sessions {
			s.sys.Shutdown()
		}
		batch.Reset()
	}
	b.StopTimer()
	batchPerMachine := b.Elapsed().Seconds() / float64(b.N*lanes)
	// Untimed runs of the single-machine reference path anchor the
	// in-process ratio: same host, same moment, same workload. The
	// fastest of three is the reference's best case, so the reported
	// speedup is conservative.
	refWall := 0.0
	for i := 0; i < 3; i++ {
		refStart := time.Now()
		sys := system.New(system.Config{Persona: persona.NT40()})
		core.StartIdleLoop(sys.K, bufCap)
		sys.K.Run(horizon)
		sys.Shutdown()
		if w := time.Since(refStart).Seconds(); refWall == 0 || w < refWall {
			refWall = w
		}
	}
	b.ReportMetric(30*float64(b.N*lanes)/b.Elapsed().Seconds(), "machine-sim-s/s")
	b.ReportMetric(refWall/batchPerMachine, "x-vs-reference")
}

// BenchmarkExtraction reports the analysis-side cost: extracting events
// from a large pre-recorded trace.
func BenchmarkExtraction(b *testing.B) {
	sys := system.New(system.Config{Persona: persona.NT40()})
	probe := core.AttachProbe(sys.K)
	idle := core.StartIdleLoop(sys.K, 400_000)
	n := apps.NewNotepad(sys, 250_000)
	script := &input.Script{
		Events:    input.TypeText(simtime.Time(300*simtime.Millisecond), input.SampleText(500), 120*simtime.Millisecond),
		QueueSync: true,
	}
	script.Install(sys)
	sys.K.Run(script.End().Add(simtime.Second))
	sys.Shutdown()
	samples, msgs, tid := idle.Samples(), probe.Msgs, n.Thread().ID()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := core.Extract(samples, msgs, core.ExtractOptions{Thread: tid, StripQueueSync: true})
		if len(events) != 500 {
			b.Fatalf("events = %d", len(events))
		}
	}
}

func BenchmarkExtBatching(b *testing.B) {
	r := runExperimentExt(b, "ext-batching").(*experiments.ExtBatchingResult)
	b.ReportMetric(r.Paced.Mean, "paced-ms")
	b.ReportMetric(r.Saturated.Mean, "saturated-ms")
	b.ReportMetric(r.SaturatedRate, "saturated-events-per-s")
}

func BenchmarkExtThinkWait(b *testing.B) {
	r := runExperimentExt(b, "ext-thinkwait").(*experiments.ExtThinkWaitResult)
	for _, s := range r.Systems {
		if s.Persona == "Windows 95" {
			b.ReportMetric(100*s.WaitShare, "w95-wait-pct")
		}
	}
}

func BenchmarkExtMetric(b *testing.B) {
	r := runExperimentExt(b, "ext-metric").(*experiments.ExtMetricResult)
	b.ReportMetric(r.Systems[0].Values[0], "nt351-irritation-50ms-s")
}

func BenchmarkExtSlowCPU(b *testing.B) {
	r := runExperimentExt(b, "ext-slowcpu").(*experiments.ExtSlowCPUResult)
	b.ReportMetric(r.Rows[len(r.Rows)-1].Refresh.Mean, "20mhz-refresh-ms")
}

func BenchmarkExtInterrupts(b *testing.B) {
	r := runExperimentExt(b, "ext-interrupts").(*experiments.ExtInterruptsResult)
	for _, row := range r.Systems {
		if row.Persona == "Windows NT 4.0" {
			b.ReportMetric(row.Cycles["keyboard"], "nt40-kbd-cycles")
		}
	}
}

// runExperimentExt mirrors runExperiment for the extension artifacts.
func runExperimentExt(b *testing.B, id string) experiments.Result {
	return runExperiment(b, id)
}
