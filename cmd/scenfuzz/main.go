// Command scenfuzz searches the scenario space for latency cliffs: it
// generates one declarative scenario document per seed
// (scenario.Generate), compiles each onto the experiment machinery
// (experiments.FromScenario), runs it, and scores the run by its cliff
// ratio — worst event latency over mean event latency. Scenarios whose
// ratio clears -threshold are outliers; the top -keep of them are
// written as JSON documents ready to commit into the corpus that
// `latbench -run corpus` replays.
//
// Every document pins its generating seed, so a cliff found here
// reproduces bit-for-bit from the committed file regardless of the
// replaying run's -seed.
//
// Usage:
//
//	scenfuzz [-start N] [-n N] [-threshold R] [-keep K]
//	         [-kinds typing,browse] [-jobs N] [-out testdata/scenarios]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"latlab/internal/experiments"
	"latlab/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// outlier is one scored scenario run.
type outlier struct {
	seed   uint64
	doc    scenario.Doc
	events int
	maxMs  float64
	meanMs float64
	ratio  float64
	err    error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		start     = fs.Uint64("start", 1, "first seed of the search range")
		n         = fs.Int("n", 64, "number of consecutive seeds to search")
		threshold = fs.Float64("threshold", 3, "minimum max/mean latency ratio to count as an outlier")
		keep      = fs.Int("keep", 5, "write at most this many top outliers")
		kinds     = fs.String("kinds", "", "comma-separated workload kinds to restrict to (default all)")
		jobs      = fs.Int("jobs", runtime.NumCPU(), "run up to N scenarios concurrently")
		outDir    = fs.String("out", "", "write outlier documents to this directory as <id>.json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cons scenario.Constraints
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			cons.Kinds = append(cons.Kinds, strings.TrimSpace(k))
		}
	}

	results := make([]outlier, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *jobs))
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = score(*start+uint64(i), cons)
		}(i)
	}
	wg.Wait()

	var failed int
	var hits []outlier
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(stderr, "scenfuzz: seed %d: %v\n", r.seed, r.err)
			failed++
			continue
		}
		if r.ratio >= *threshold {
			hits = append(hits, r)
		}
	}
	// Rank by ratio, tie-break by seed so the report and the kept set
	// are deterministic for a given search range.
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].ratio != hits[j].ratio {
			return hits[i].ratio > hits[j].ratio
		}
		return hits[i].seed < hits[j].seed
	})
	if len(hits) > *keep {
		hits = hits[:*keep]
	}

	fmt.Fprintf(stdout, "searched seeds %d..%d: %d outliers at ratio >= %.1f (kept %d)\n\n",
		*start, *start+uint64(*n)-1, len(hits), *threshold, len(hits))
	fmt.Fprintf(stdout, "%-20s %-6s %-10s %-5s %-8s %7s %9s %9s %7s\n",
		"id", "seed", "kind", "pers", "machine", "events", "max", "mean", "ratio")
	for _, h := range hits {
		mach := h.doc.Machine
		if mach == "" {
			mach = "(run)"
		}
		fmt.Fprintf(stdout, "%-20s %-6d %-10s %-5s %-8s %7d %7.1fms %7.2fms %6.1fx\n",
			h.doc.ID, h.seed, h.doc.Workload.Kind, h.doc.Persona, mach,
			h.events, h.maxMs, h.meanMs, h.ratio)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "scenfuzz: %v\n", err)
			return 1
		}
		for _, h := range hits {
			data, err := scenario.Marshal(h.doc)
			if err != nil {
				fmt.Fprintf(stderr, "scenfuzz: %v\n", err)
				return 1
			}
			path := filepath.Join(*outDir, h.doc.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintf(stderr, "scenfuzz: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "scenfuzz: %d of %d seeds failed\n", failed, *n)
		return 1
	}
	return 0
}

// score generates, compiles, and runs the scenario for one seed.
func score(seed uint64, cons scenario.Constraints) outlier {
	o := outlier{seed: seed, doc: scenario.Generate(seed, cons)}
	spec, err := experiments.FromScenario(o.doc)
	if err != nil {
		o.err = err
		return o
	}
	res, err := spec.Run(context.Background(), experiments.Config{Seed: seed})
	if err != nil {
		o.err = err
		return o
	}
	sr, ok := res.(*experiments.ScenarioResult)
	if !ok {
		o.err = fmt.Errorf("unexpected result type %T", res)
		return o
	}
	o.events = len(sr.Row.Report.Events)
	o.maxMs, o.meanMs, o.ratio = sr.Cliff()
	return o
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
