package main

import (
	"path/filepath"
	"strings"
	"testing"

	"latlab/internal/scenario"
)

// TestSearchFindsAndWritesOutliers runs a tiny search end to end: the
// report is deterministic for a fixed seed range, and every written
// document re-parses, pins its seed, and validates.
func TestSearchFindsAndWritesOutliers(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	code := run([]string{"-start", "1", "-n", "12", "-threshold", "1", "-keep", "3", "-out", dir},
		&out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "searched seeds 1..12") {
		t.Fatalf("missing report header:\n%s", out.String())
	}
	paths, err := filepath.Glob(filepath.Join(dir, "fz-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d documents, want 3", len(paths))
	}
	for _, p := range paths {
		doc, err := scenario.ParseFile(p)
		if err != nil {
			t.Fatalf("written document does not parse: %v", err)
		}
		if doc.Seed == 0 {
			t.Fatalf("%s: document does not pin its seed", p)
		}
	}
}

// TestScoreReproducible locks the scorer itself: the same seed yields
// the same cliff metrics, which is what makes a committed outlier's
// numbers in EXPERIMENTS.md checkable.
func TestScoreReproducible(t *testing.T) {
	a := score(19, scenario.Constraints{})
	b := score(19, scenario.Constraints{})
	if a.err != nil || b.err != nil {
		t.Fatalf("score failed: %v / %v", a.err, b.err)
	}
	if a.ratio != b.ratio || a.maxMs != b.maxMs || a.events != b.events {
		t.Fatalf("score not reproducible: %+v vs %+v", a, b)
	}
	if a.ratio <= 1 {
		t.Fatalf("seed 19 is a known cliff, got ratio %.2f", a.ratio)
	}
}

// TestBadFlags pins the CLI's failure modes.
func TestBadFlags(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-n", "1", "-kinds", "spreadsheet"}, &out, &errBuf); code != 1 {
		t.Fatalf("invalid kind constraint: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
}
