package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: latlab
cpu: Test CPU @ 3.0GHz
BenchmarkSimulatorThroughput-8   	     142	   8454210 ns/op	 1039617 B/op	     110 allocs/op
BenchmarkExtraction-8            	    8325	    138403 ns/op	   85984 B/op	      14 allocs/op
PASS
ok  	latlab	12.3s
pkg: latlab/internal/eventq
BenchmarkSchedulePop-8           	12345678	        95.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	latlab/internal/eventq	1.5s
`

func TestParseBenchOutput(t *testing.T) {
	base, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if base.GoOS != "linux" || base.CPU != "Test CPU @ 3.0GHz" {
		t.Fatalf("env headers wrong: %+v", base)
	}
	if len(base.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(base.Benchmarks))
	}
	th := base.Benchmarks["BenchmarkSimulatorThroughput"]
	if th.NsPerOp != 8454210 || th.AllocsPerOp != 110 || th.BytesPerOp != 1039617 || th.Pkg != "latlab" {
		t.Fatalf("throughput parsed wrong: %+v", th)
	}
	sp := base.Benchmarks["BenchmarkSchedulePop"]
	if sp.NsPerOp != 95.5 || sp.Pkg != "latlab/internal/eventq" {
		t.Fatalf("GOMAXPROCS suffix or pkg handling wrong: %+v", sp)
	}
}

func TestParseBenchOutputFoldsRepeats(t *testing.T) {
	// A -count=3 style run: the same benchmark three times in one
	// package folds into a mean with Samples=3.
	repeated := `pkg: latlab
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
BenchmarkX-8	200	2000 ns/op	64 B/op	6 allocs/op
BenchmarkX-8	300	3000 ns/op	64 B/op	8 allocs/op
`
	base, err := parseBenchOutput(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	r := base.Benchmarks["BenchmarkX"]
	if r.Samples != 3 || r.NsPerOp != 2000 || r.AllocsPerOp != 6 || r.Iterations != 600 {
		t.Fatalf("folded result wrong: %+v", r)
	}
	// Single-sample results record Samples=1.
	single, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Benchmarks["BenchmarkExtraction"].Samples; s != 1 {
		t.Fatalf("single run has Samples=%d, want 1", s)
	}
	// The same name across two packages is still ambiguous.
	crossPkg := `pkg: latlab
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
pkg: latlab/internal/eventq
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
`
	if _, err := parseBenchOutput(strings.NewReader(crossPkg)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("cross-package duplicate must error, got %v", err)
	}
}

func TestParseBenchLineErrors(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 10 bogus ns/op",
		"BenchmarkX-8 10 5 furlongs/op",
	} {
		if _, _, err := parseBenchLine(line); err == nil {
			t.Fatalf("line should not parse: %q", line)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 0},
	}}
	ok := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1050, AllocsPerOp: 100}, // +5% ns: within tolerance
		"BenchmarkB": {NsPerOp: 900, AllocsPerOp: 0},
	}}
	if f := compare(base, ok, 0.10, 0.10, false); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
	bad := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1200, AllocsPerOp: 150}, // both gates blown
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 1},   // any alloc vs 0 baseline fails
	}}
	f := compare(base, bad, 0.10, 0.10, false)
	if len(f) != 3 {
		t.Fatalf("want 3 failures, got %v", f)
	}
	// -skip-ns keeps the allocation gate only.
	if f := compare(base, bad, 0.10, 0.10, true); len(f) != 2 {
		t.Fatalf("want 2 failures with -skip-ns, got %v", f)
	}
	// A benchmark vanishing from the run is itself a failure.
	missing := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
	}}
	if f := compare(base, missing, 0.10, 0.10, false); len(f) != 1 {
		t.Fatalf("want 1 failure for missing benchmark, got %v", f)
	}
}

func TestParseBenchOutputRecordsStddev(t *testing.T) {
	repeated := `pkg: latlab
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
BenchmarkX-8	200	2000 ns/op	64 B/op	4 allocs/op
BenchmarkX-8	300	3000 ns/op	64 B/op	4 allocs/op
`
	base, err := parseBenchOutput(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	r := base.Benchmarks["BenchmarkX"]
	// Sample stddev of {1000, 2000, 3000} is exactly 1000; the identical
	// allocs fold to zero variance.
	if r.NsStd != 1000 || r.AllocStd != 0 {
		t.Fatalf("stddev wrong: %+v", r)
	}
	// Single samples carry no stddev at all.
	single, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Benchmarks["BenchmarkExtraction"]; s.NsStd != 0 || s.AllocStd != 0 {
		t.Fatalf("single sample grew a stddev: %+v", s)
	}
}

func TestCompareConfidenceGate(t *testing.T) {
	// Baseline: mean 1000 ns, sd 50 over 5 samples. The 10% tolerance is
	// the practical-effect floor; beyond it the exceedance must also be
	// statistically significant, so wide run-to-run noise cannot fail the
	// build the way it would under the plain 10% rule.
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, NsStd: 50, AllocsPerOp: 100, Samples: 5},
	}}
	within := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1030, NsStd: 50, AllocsPerOp: 100, Samples: 5},
	}}
	if f := compare(base, within, 0.10, 0.10, false); len(f) != 0 {
		t.Fatalf("mean inside the tolerance band must pass: %v", f)
	}
	// +15% but the current run's own variance is huge: beyond the floor
	// yet insignificant (t ≈ 1.1), so it passes where the old rule would
	// have failed the build on noise.
	noisy := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1150, NsStd: 300, AllocsPerOp: 100, Samples: 5},
	}}
	if f := compare(base, noisy, 0.10, 0.10, false); len(f) != 0 {
		t.Fatalf("insignificant exceedance must pass the t filter: %v", f)
	}
	// +15% with tight variance on both sides (t ≈ 4.7) is a real
	// regression: beyond the floor and significant.
	bad := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1150, NsStd: 50, AllocsPerOp: 100, Samples: 5},
	}}
	f := compare(base, bad, 0.10, 0.10, false)
	if len(f) != 1 || !strings.Contains(f[0], "Welch t") {
		t.Fatalf("significant exceedance must fail the t gate: %v", f)
	}
	// A multi-sample baseline checked by a single-sample run gates on the
	// baseline's 95% prediction interval (here ≈ 1117): +11% is beyond
	// the floor but inside the interval, so it passes.
	single := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1110, AllocsPerOp: 100, Samples: 1},
	}}
	if f := compare(base, single, 0.10, 0.10, false); len(f) != 0 {
		t.Fatalf("single sample inside the prediction interval must pass: %v", f)
	}
	singleBad := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1200, AllocsPerOp: 100, Samples: 1},
	}}
	f = compare(base, singleBad, 0.10, 0.10, false)
	if len(f) != 1 || !strings.Contains(f[0], "prediction bound") {
		t.Fatalf("single sample outside the prediction interval must fail: %v", f)
	}
	// Zero-variance metrics (deterministic allocs) keep the exact
	// tolerance rule even on multi-sample data.
	allocBad := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, NsStd: 50, AllocsPerOp: 150, Samples: 5},
	}}
	f = compare(base, allocBad, 0.10, 0.10, false)
	if len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
		t.Fatalf("zero-variance alloc regression must fail the tolerance rule: %v", f)
	}
}

func TestTCritTable(t *testing.T) {
	// Spot-check the step table: exact entries, conservative rounding
	// down between them, and the normal limit for huge df.
	for _, tc := range []struct{ df, want float64 }{
		{1, 6.314}, {4, 2.132}, {4.5, 2.132}, {10, 1.812}, {11, 1.812}, {1000, 1.645},
	} {
		if got := tCrit(tc.df); got != tc.want {
			t.Errorf("tCrit(%v) = %v, want %v", tc.df, got, tc.want)
		}
	}
}

func TestCheckRefusesCPUMismatch(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-record", filepath.Join(dir, "BENCH_2026-08-05.json")},
		strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("record exited %d: %s", code, errOut.String())
	}
	otherCPU := strings.Replace(sampleOutput, "Test CPU @ 3.0GHz", "Other CPU @ 2.0GHz", 1)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(otherCPU), &out, &errOut); code != 2 {
		t.Fatalf("cpu mismatch exited %d, want 2: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "cpu") || !strings.Contains(errOut.String(), "-allow-cpu-mismatch") {
		t.Fatalf("mismatch error should name the cpus and the override: %s", errOut.String())
	}
	// The override (with -skip-ns, the usual cross-machine pairing) lets
	// the allocation gate run.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "-dir", dir, "-allow-cpu-mismatch", "-skip-ns"},
		strings.NewReader(otherCPU), &out, &errOut); code != 0 {
		t.Fatalf("override exited %d: %s", code, errOut.String())
	}
	// A baseline without a cpu header (pre-guard recordings) still checks.
	noCPU := strings.Replace(sampleOutput, "cpu: Test CPU @ 3.0GHz\n", "", 1)
	dir2 := t.TempDir()
	if code := run([]string{"-record", filepath.Join(dir2, "BENCH_2026-08-05.json")},
		strings.NewReader(noCPU), &out, &errOut); code != 0 {
		t.Fatalf("record exited %d: %s", code, errOut.String())
	}
	if code := run([]string{"-check", "-dir", dir2}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("headerless baseline check exited %d: %s", code, errOut.String())
	}
}

func TestRecordThenCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-05.json")
	var out, errOut strings.Builder
	if code := run([]string{"-record", path}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("record exited %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("check of identical results exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "benchgate: OK") {
		t.Fatalf("missing OK line: %s", out.String())
	}

	regressed := strings.Replace(sampleOutput, "110 allocs/op", "500 allocs/op", 1)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(regressed), &out, &errOut); code != 1 {
		t.Fatalf("regressed check exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "allocs/op") {
		t.Fatalf("failure should name the blown gate: %s", errOut.String())
	}
}

func TestNewestBaselinePicksLatestDate(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-01.json", "BENCH_2026-08-05.json", "BENCH_2025-12-31.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-05.json" {
		t.Fatalf("newest = %s", got)
	}
	if _, err := newestBaseline(t.TempDir()); err == nil {
		t.Fatalf("empty dir should error")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("no mode should exit 2, got %d", code)
	}
	if code := run([]string{"-record", "x", "-check"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("both modes should exit 2, got %d", code)
	}
	if code := run([]string{"-check"}, strings.NewReader("PASS\n"), &out, &errOut); code != 2 {
		t.Fatalf("empty input should exit 2, got %d", code)
	}
}

func TestCheckAgainstEmptyBaselineFailsLoudly(t *testing.T) {
	// A baseline file with no benchmarks (wrong schema, truncated record)
	// must be a hard error, not a vacuous pass against zero values.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-05.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(sampleOutput), &out, &errOut); code != 2 {
		t.Fatalf("empty baseline should exit 2, got %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "no baseline benchmark results found in") {
		t.Fatalf("error should explain the empty baseline: %s", errOut.String())
	}
}
