package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: latlab
cpu: Test CPU @ 3.0GHz
BenchmarkSimulatorThroughput-8   	     142	   8454210 ns/op	 1039617 B/op	     110 allocs/op
BenchmarkExtraction-8            	    8325	    138403 ns/op	   85984 B/op	      14 allocs/op
PASS
ok  	latlab	12.3s
pkg: latlab/internal/eventq
BenchmarkSchedulePop-8           	12345678	        95.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	latlab/internal/eventq	1.5s
`

func TestParseBenchOutput(t *testing.T) {
	base, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if base.GoOS != "linux" || base.CPU != "Test CPU @ 3.0GHz" {
		t.Fatalf("env headers wrong: %+v", base)
	}
	if len(base.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(base.Benchmarks))
	}
	th := base.Benchmarks["BenchmarkSimulatorThroughput"]
	if th.NsPerOp != 8454210 || th.AllocsPerOp != 110 || th.BytesPerOp != 1039617 || th.Pkg != "latlab" {
		t.Fatalf("throughput parsed wrong: %+v", th)
	}
	sp := base.Benchmarks["BenchmarkSchedulePop"]
	if sp.NsPerOp != 95.5 || sp.Pkg != "latlab/internal/eventq" {
		t.Fatalf("GOMAXPROCS suffix or pkg handling wrong: %+v", sp)
	}
}

func TestParseBenchOutputFoldsRepeats(t *testing.T) {
	// A -count=3 style run: the same benchmark three times in one
	// package folds into a mean with Samples=3.
	repeated := `pkg: latlab
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
BenchmarkX-8	200	2000 ns/op	64 B/op	6 allocs/op
BenchmarkX-8	300	3000 ns/op	64 B/op	8 allocs/op
`
	base, err := parseBenchOutput(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	r := base.Benchmarks["BenchmarkX"]
	if r.Samples != 3 || r.NsPerOp != 2000 || r.AllocsPerOp != 6 || r.Iterations != 600 {
		t.Fatalf("folded result wrong: %+v", r)
	}
	// Single-sample results record Samples=1.
	single, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Benchmarks["BenchmarkExtraction"].Samples; s != 1 {
		t.Fatalf("single run has Samples=%d, want 1", s)
	}
	// The same name across two packages is still ambiguous.
	crossPkg := `pkg: latlab
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
pkg: latlab/internal/eventq
BenchmarkX-8	100	1000 ns/op	64 B/op	4 allocs/op
`
	if _, err := parseBenchOutput(strings.NewReader(crossPkg)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("cross-package duplicate must error, got %v", err)
	}
}

func TestParseBenchLineErrors(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 10 bogus ns/op",
		"BenchmarkX-8 10 5 furlongs/op",
	} {
		if _, _, err := parseBenchLine(line); err == nil {
			t.Fatalf("line should not parse: %q", line)
		}
	}
}

func TestCompareGates(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 0},
	}}
	ok := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1050, AllocsPerOp: 100}, // +5% ns: within tolerance
		"BenchmarkB": {NsPerOp: 900, AllocsPerOp: 0},
	}}
	if f := compare(base, ok, 0.10, 0.10, false); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
	bad := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1200, AllocsPerOp: 150}, // both gates blown
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 1},   // any alloc vs 0 baseline fails
	}}
	f := compare(base, bad, 0.10, 0.10, false)
	if len(f) != 3 {
		t.Fatalf("want 3 failures, got %v", f)
	}
	// -skip-ns keeps the allocation gate only.
	if f := compare(base, bad, 0.10, 0.10, true); len(f) != 2 {
		t.Fatalf("want 2 failures with -skip-ns, got %v", f)
	}
	// A benchmark vanishing from the run is itself a failure.
	missing := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
	}}
	if f := compare(base, missing, 0.10, 0.10, false); len(f) != 1 {
		t.Fatalf("want 1 failure for missing benchmark, got %v", f)
	}
}

func TestRecordThenCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-05.json")
	var out, errOut strings.Builder
	if code := run([]string{"-record", path}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("record exited %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("check of identical results exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "benchgate: OK") {
		t.Fatalf("missing OK line: %s", out.String())
	}

	regressed := strings.Replace(sampleOutput, "110 allocs/op", "500 allocs/op", 1)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(regressed), &out, &errOut); code != 1 {
		t.Fatalf("regressed check exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "allocs/op") {
		t.Fatalf("failure should name the blown gate: %s", errOut.String())
	}
}

func TestNewestBaselinePicksLatestDate(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-01.json", "BENCH_2026-08-05.json", "BENCH_2025-12-31.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-05.json" {
		t.Fatalf("newest = %s", got)
	}
	if _, err := newestBaseline(t.TempDir()); err == nil {
		t.Fatalf("empty dir should error")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("no mode should exit 2, got %d", code)
	}
	if code := run([]string{"-record", "x", "-check"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("both modes should exit 2, got %d", code)
	}
	if code := run([]string{"-check"}, strings.NewReader("PASS\n"), &out, &errOut); code != 2 {
		t.Fatalf("empty input should exit 2, got %d", code)
	}
}

func TestCheckAgainstEmptyBaselineFailsLoudly(t *testing.T) {
	// A baseline file with no benchmarks (wrong schema, truncated record)
	// must be a hard error, not a vacuous pass against zero values.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-05.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-check", "-dir", dir}, strings.NewReader(sampleOutput), &out, &errOut); code != 2 {
		t.Fatalf("empty baseline should exit 2, got %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "no baseline benchmark results found in") {
		t.Fatalf("error should explain the empty baseline: %s", errOut.String())
	}
}
