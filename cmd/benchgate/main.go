// Command benchgate records and enforces benchmark baselines. It reads
// `go test -bench -benchmem` output on stdin and either writes a JSON
// baseline (-record) or compares the results against the newest
// committed baseline and exits non-zero on regression (-check).
//
// Usage:
//
//	go test -bench ... -benchmem | benchgate -record BENCH_2026-08-05.json
//	go test -bench ... -benchmem | benchgate -check [-dir .] [-ns-tol 0.10] [-alloc-tol 0.10]
//
// ns/op is wall-clock and inherently noisy; allocs/op is deterministic.
// Both gates apply a fractional tolerance on the means (default 10%,
// overridable per run) as the practical-effect floor. Repeated lines of
// the same benchmark (a `-count > 1` run) fold into a mean plus a
// sample standard deviation, and the variance adds a statistical filter
// on top of the floor: an exceedance only fails if it is also
// significant at 95% one-sided confidence — a Welch t test when both
// runs are multi-sample, the baseline's prediction interval when the
// current run is a single sample — so run-to-run noise wider than the
// tolerance band does not fail the build. Zero-variance folds
// (identical repeats, e.g. allocs/op) keep the plain tolerance rule,
// since a zero-width interval would flag any epsilon.
//
// ns/op is only comparable on the host that recorded the baseline, so
// -check refuses a baseline whose `cpu` string differs from the
// current run's (exit 2); -allow-cpu-mismatch overrides, typically
// together with -skip-ns to keep only the allocation gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measured costs. With `-count > 1` the
// metrics are means over the repeated runs, Samples records how many
// lines were folded, and NsStd/AllocStd carry the sample standard
// deviations the confidence-interval gate runs on.
type Result struct {
	Pkg         string  `json:"pkg,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	// Samples is the number of benchmark lines folded into this result
	// (1 for a plain -count=1 run; absent in pre-Samples baselines).
	Samples int `json:"samples,omitempty"`
	// NsStd and AllocStd are the sample standard deviations across the
	// folded lines; present only when Samples > 1.
	NsStd    float64 `json:"ns_std,omitempty"`
	AllocStd float64 `json:"alloc_std,omitempty"`
	// Welford M2 accumulators, live only while parsing.
	nsM2, allocM2 float64
}

// Baseline is the recorded state of the benchmark suite.
type Baseline struct {
	Generated  string            `json:"generated"`
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	record := fs.String("record", "", "write a baseline JSON to this path")
	check := fs.Bool("check", false, "compare stdin results against the newest baseline")
	dir := fs.String("dir", ".", "directory searched for BENCH_*.json baselines")
	baselinePath := fs.String("baseline", "", "explicit baseline file (overrides -dir discovery)")
	nsTol := fs.Float64("ns-tol", 0.10, "allowed fractional ns/op regression")
	allocTol := fs.Float64("alloc-tol", 0.10, "allowed fractional allocs/op regression")
	skipNs := fs.Bool("skip-ns", false, "skip the ns/op gate (cross-machine checks)")
	allowCPU := fs.Bool("allow-cpu-mismatch", false, "check against a baseline recorded on a different cpu")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*record == "") == !*check {
		fmt.Fprintln(stderr, "benchgate: exactly one of -record or -check is required")
		return 2
	}

	cur, err := parseBenchOutput(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark results on stdin")
		return 2
	}

	if *record != "" {
		cur.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*record, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchgate: recorded %d benchmarks to %s\n", len(cur.Benchmarks), *record)
		return 0
	}

	path := *baselinePath
	if path == "" {
		if path, err = newestBaseline(*dir); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", path, err)
		return 2
	}
	// An empty (or wrong-schema) baseline would gate nothing and pass
	// vacuously; fail loudly instead of comparing against zero values.
	if len(base.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "benchgate: no baseline benchmark results found in %s (re-record with `make bench-baseline`)\n", path)
		return 2
	}
	// ns/op only means something on the host that recorded it: refuse a
	// cross-machine comparison unless explicitly overridden.
	if !*allowCPU && base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Fprintf(stderr, "benchgate: baseline %s was recorded on cpu %q but this run is on %q; "+
			"re-record with `make bench-baseline`, or pass -allow-cpu-mismatch (usually with -skip-ns) to compare anyway\n",
			path, base.CPU, cur.CPU)
		return 2
	}

	failures := compare(&base, cur, *nsTol, *allocTol, *skipNs)
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cur.Benchmarks[name]
		if b, ok := base.Benchmarks[name]; ok {
			fmt.Fprintf(stdout, "benchgate: %-32s ns/op %12.0f → %12.0f (%+.1f%%)  allocs/op %7.0f → %7.0f (%+.1f%%)\n",
				name, b.NsPerOp, c.NsPerOp, pct(b.NsPerOp, c.NsPerOp),
				b.AllocsPerOp, c.AllocsPerOp, pct(b.AllocsPerOp, c.AllocsPerOp))
		} else {
			fmt.Fprintf(stdout, "benchgate: %-32s not in baseline (new benchmark)\n", name)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "benchgate: FAIL %s\n", f)
		}
		fmt.Fprintf(stderr, "benchgate: %d regression(s) vs %s\n", len(failures), path)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: OK vs %s\n", path)
	return 0
}

// pct returns the percent change from base to cur (0 when base is 0).
func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// compare returns one message per gated regression of cur vs base.
func compare(base, cur *Baseline, nsTol, allocTol float64, skipNs bool) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in current run", name))
			continue
		}
		if !skipNs {
			if fail, why := regressed(b.NsPerOp, b.NsStd, b.Samples, c.NsPerOp, c.NsStd, c.Samples, nsTol); fail {
				failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f: %s",
					name, c.NsPerOp, b.NsPerOp, why))
			}
		}
		if fail, why := regressed(b.AllocsPerOp, b.AllocStd, b.Samples, c.AllocsPerOp, c.AllocStd, c.Samples, allocTol); fail {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f: %s",
				name, c.AllocsPerOp, b.AllocsPerOp, why))
		}
	}
	return failures
}

// regressed gates one metric of cur against base. The fractional
// tolerance on means is always the practical-effect floor: a change
// inside it never fails. Beyond the floor, multi-sample variance data
// makes the gate statistical as well — the exceedance must also be
// significant at 95% one-sided (a Welch t test when both runs are
// multi-sample, the baseline's prediction interval when the current
// run is a single sample), so run-to-run noise wider than the
// tolerance band does not fail the build. Single-sample or
// zero-variance data keeps the plain tolerance rule. The returned
// string explains a failure.
func regressed(bMean, bStd float64, bN int, cMean, cStd float64, cN int, tol float64) (bool, string) {
	if cMean <= bMean*(1+tol) {
		return false, ""
	}
	if bN > 1 && bStd > 0 {
		if cN > 1 {
			se := math.Sqrt(bStd*bStd/float64(bN) + cStd*cStd/float64(cN))
			t := (cMean - bMean) / se
			df := welchDF(bStd, bN, cStd, cN)
			crit := tCrit(df)
			if t <= crit {
				return false, ""
			}
			return true, fmt.Sprintf("exceeds by more than %.0f%% and is significant (Welch t %.2f > %.2f at 95%% one-sided, df %.1f, n %d vs %d)",
				tol*100, t, crit, df, bN, cN)
		}
		bound := bMean + tCrit(float64(bN-1))*bStd*math.Sqrt(1+1/float64(bN))
		if cMean <= bound {
			return false, ""
		}
		return true, fmt.Sprintf("exceeds by more than %.0f%% and the 95%% prediction bound %.0f (baseline n=%d)",
			tol*100, bound, bN)
	}
	return true, fmt.Sprintf("exceeds by more than %.0f%%", tol*100)
}

// welchDF is the Welch–Satterthwaite effective degrees of freedom for
// two samples with standard deviations s1, s2 and sizes n1, n2 > 1.
func welchDF(s1 float64, n1 int, s2 float64, n2 int) float64 {
	v1 := s1 * s1 / float64(n1)
	v2 := s2 * s2 / float64(n2)
	den := v1*v1/float64(n1-1) + v2*v2/float64(n2-1)
	if den == 0 {
		return float64(n1 + n2 - 2)
	}
	return (v1 + v2) * (v1 + v2) / den
}

// tCrit is the one-sided 95% Student-t critical value for df degrees of
// freedom, from a step table. Rounding is conservative: a df between
// entries gates at the next-lower tabulated df's larger value, and only
// an effectively-normal df reaches the 1.645 limit.
func tCrit(df float64) float64 {
	table := []struct{ df, t float64 }{
		{1, 6.314}, {2, 2.920}, {3, 2.353}, {4, 2.132}, {5, 2.015},
		{6, 1.943}, {7, 1.895}, {8, 1.860}, {9, 1.833}, {10, 1.812},
		{12, 1.782}, {15, 1.753}, {20, 1.725}, {30, 1.697},
		{60, 1.671}, {120, 1.658},
	}
	if df >= 1000 {
		return 1.645
	}
	t := table[0].t
	for _, e := range table {
		if df < e.df {
			break
		}
		t = e.t
	}
	return t
}

// newestBaseline returns the lexically greatest BENCH_*.json in dir —
// the newest, since the naming convention embeds an ISO date.
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline in %s (run `make bench-baseline` first)", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// parseBenchOutput extracts benchmark lines and environment headers from
// `go test -bench -benchmem` output.
func parseBenchOutput(r io.Reader) (*Baseline, error) {
	out := &Baseline{Benchmarks: make(map[string]Result)}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if prev, dup := out.Benchmarks[name]; dup {
				// Repeats of the same benchmark in the same package are a
				// -count>1 run: fold them into a running mean. The same name
				// in two packages is still ambiguous and still an error.
				if prev.Pkg != pkg {
					return nil, fmt.Errorf("duplicate benchmark %s (pkgs %s, %s): use unique names", name, prev.Pkg, pkg)
				}
				out.Benchmarks[name] = fold(prev, res)
				break
			}
			res.Pkg = pkg
			res.Samples = 1
			out.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Finalize the Welford accumulators into sample standard deviations.
	for name, res := range out.Benchmarks {
		if res.Samples > 1 {
			res.NsStd = math.Sqrt(res.nsM2 / float64(res.Samples-1))
			res.AllocStd = math.Sqrt(res.allocM2 / float64(res.Samples-1))
			out.Benchmarks[name] = res
		}
	}
	return out, nil
}

// fold merges a repeated benchmark line into the accumulated result:
// metrics become running means over the samples (with Welford M2
// accumulation for the gated metrics' variance), iterations sum.
func fold(acc, next Result) Result {
	n := float64(acc.Samples)
	nsDelta := next.NsPerOp - acc.NsPerOp
	allocDelta := next.AllocsPerOp - acc.AllocsPerOp
	acc.NsPerOp = (acc.NsPerOp*n + next.NsPerOp) / (n + 1)
	acc.BytesPerOp = (acc.BytesPerOp*n + next.BytesPerOp) / (n + 1)
	acc.AllocsPerOp = (acc.AllocsPerOp*n + next.AllocsPerOp) / (n + 1)
	acc.nsM2 += nsDelta * (next.NsPerOp - acc.NsPerOp)
	acc.allocM2 += allocDelta * (next.AllocsPerOp - acc.AllocsPerOp)
	acc.Iterations += next.Iterations
	acc.Samples++
	return acc
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkExtraction-8  8325  138403 ns/op  85984 B/op  14 allocs/op
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so baselines are stable across -cpu.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res Result
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("bad value in %q: %w", line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if res.NsPerOp == 0 && res.AllocsPerOp == 0 && res.BytesPerOp == 0 {
		return "", Result{}, fmt.Errorf("no recognized metrics in %q (did you pass -benchmem?)", line)
	}
	return name, res, nil
}
