package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden corpus instead of comparing against it:
//
//	go test ./cmd/traceview -update
var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// TestGolden locks every traceview rendering mode byte-for-byte against
// checked-in inputs: the utilization profile at full resolution and
// bucketed, and the attribution table. The renderers are deterministic,
// so any diff is a presentation change that must be reviewed.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"profile", []string{"-in", filepath.Join("testdata", "samples.csv"), "-width", "60", "-height", "8"}},
		{"profile-bucketed", []string{"-in", filepath.Join("testdata", "samples.csv"), "-bucket-ms", "5", "-width", "60", "-height", "8"}},
		{"attrib", []string{"-attrib", filepath.Join("testdata", "attrib.csv")}},
		{"attrib-classes", []string{"-attrib", filepath.Join("testdata", "attrib.csv"), "-classes"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf strings.Builder
			if code := run(tc.args, &out, &errBuf); code != 0 {
				t.Fatalf("exit %d: %s", code, errBuf.String())
			}
			path := filepath.Join("testdata", "golden", tc.name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./cmd/traceview -update`): %v", err)
			}
			if !bytes.Equal(want, []byte(out.String())) {
				t.Fatalf("output differs from %s:\nwant:\n%s\ngot:\n%s", path, want, out.String())
			}
		})
	}
}
