// Command traceview renders an idle-sample CSV (as written by idleprof
// or trace.WriteIdleCSV) as a CPU-utilization profile, at full 1 ms
// resolution or averaged into buckets — the two views of paper Fig. 4 —
// or renders a latency-attribution CSV (as written by latbench -attrib)
// as the "where did the time go" table.
//
// Usage:
//
//	traceview -in samples.csv
//	traceview -in samples.csv -bucket-ms 10
//	traceview -attrib attrib.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"latlab/internal/core"
	"latlab/internal/perception"
	"latlab/internal/simtime"
	"latlab/internal/trace"
	"latlab/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "idle-sample CSV file")
		attr     = fs.String("attrib", "", "latency-attribution CSV file (as written by latbench -attrib)")
		classes  = fs.Bool("classes", false, "with -attrib: append the perceptual-class table (default calibration)")
		bucketMs = fs.Float64("bucket-ms", 0, "averaging bucket (0 = full resolution)")
		width    = fs.Int("width", 110, "plot width")
		height   = fs.Int("height", 12, "plot height")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*in == "") == (*attr == "") {
		fmt.Fprintln(stderr, "traceview: exactly one of -in or -attrib is required")
		fs.Usage()
		return 2
	}
	if *attr != "" {
		return runAttrib(*attr, *classes, stdout, stderr)
	}
	if *classes {
		fmt.Fprintln(stderr, "traceview: -classes requires -attrib")
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	defer f.Close()
	samples, err := trace.ParseIdleCSV(f)
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}

	var pts []core.ProfilePoint
	mode := "full 1ms resolution"
	if *bucketMs > 0 {
		pts = core.AveragedProfile(samples, simtime.FromMillis(*bucketMs))
		mode = fmt.Sprintf("averaged over %.0fms buckets", *bucketMs)
	} else {
		pts = core.Profile(samples)
	}
	var stolen simtime.Duration
	for _, s := range samples {
		stolen += s.Stolen(core.NominalSample)
	}
	title := fmt.Sprintf("%s — %d samples, %s, busy %v", *in, len(samples), mode, stolen)
	if err := viz.Profile(stdout, title, pts, *width, *height); err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	return 0
}

// runAttrib renders an attribution CSV as the per-cause table, plus —
// with -classes — the perceptual-class view of the same episodes.
func runAttrib(path string, classes bool, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	defer f.Close()
	recs, err := trace.ParseAttribCSV(f)
	if err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	if err := viz.AttribTable(stdout, path, recs); err != nil {
		fmt.Fprintln(stderr, "traceview:", err)
		return 1
	}
	if classes {
		fmt.Fprintln(stdout)
		if err := viz.AttribClassTable(stdout, perception.Default(), recs); err != nil {
			fmt.Fprintln(stderr, "traceview:", err)
			return 1
		}
	}
	return 0
}
