package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latlab/internal/simtime"
	"latlab/internal/trace"
)

func writeSamples(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "samples.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples := []trace.IdleSample{
		{Done: simtime.Time(simtime.Millisecond), Elapsed: simtime.Millisecond},
		{Done: simtime.Time(12 * simtime.Millisecond), Elapsed: 11 * simtime.Millisecond},
		{Done: simtime.Time(13 * simtime.Millisecond), Elapsed: simtime.Millisecond},
	}
	if err := trace.WriteIdleCSV(f, samples); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderFullResolution(t *testing.T) {
	path := writeSamples(t)
	var out, errBuf strings.Builder
	if code := run([]string{"-in", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "3 samples") || !strings.Contains(got, "full 1ms resolution") {
		t.Fatalf("header wrong:\n%s", got)
	}
	if !strings.Contains(got, "busy 10ms") {
		t.Fatalf("busy total wrong:\n%s", got)
	}
}

func TestRenderBucketed(t *testing.T) {
	path := writeSamples(t)
	var out, errBuf strings.Builder
	if code := run([]string{"-in", path, "-bucket-ms", "5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "averaged over 5ms buckets") {
		t.Fatalf("bucket mode missing:\n%s", out.String())
	}
}

func TestAttribMode(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-attrib", filepath.Join("testdata", "attrib.csv")}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "where did the time go?") || !strings.Contains(got, "tlb-miss") {
		t.Fatalf("attribution table wrong:\n%s", got)
	}
}

func TestErrors(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("missing -in: exit %d", code)
	}
	// -in and -attrib are mutually exclusive.
	if code := run([]string{"-in", "a.csv", "-attrib", "b.csv"}, &out, &errBuf); code != 2 {
		t.Fatalf("both inputs: exit %d", code)
	}
	if code := run([]string{"-attrib", "/nonexistent/attrib.csv"}, &out, &errBuf); code != 1 {
		t.Fatalf("missing attrib file: exit %d", code)
	}
	badAttrib := filepath.Join(t.TempDir(), "bad-attrib.csv")
	if err := os.WriteFile(badAttrib, []byte("not an attrib csv"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-attrib", badAttrib}, &out, &errBuf); code != 1 {
		t.Fatalf("bad attrib csv: exit %d", code)
	}
	if code := run([]string{"-in", "/nonexistent/file.csv"}, &out, &errBuf); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not a csv"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-in", bad}, &out, &errBuf); code != 1 {
		t.Fatalf("bad csv: exit %d", code)
	}
	if code := run([]string{"-zz"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
