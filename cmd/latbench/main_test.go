package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, id := range []string{"fig1", "table1", "table2", "ext-slowcpu"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunQuickSubset(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig1,fig4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "Fig. 1") || !strings.Contains(got, "Fig. 4") {
		t.Fatalf("missing experiment output:\n%s", got)
	}
	if !strings.Contains(got, "====") {
		t.Fatalf("missing separator between experiments")
	}
	if !strings.Contains(got, "reproduces Fig. 1") {
		t.Fatalf("missing provenance footer")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-run", "fig99"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestOutFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.txt")
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig1", "-out", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig. 1") {
		t.Fatalf("out file missing content")
	}
	// Bad out path errors.
	if code := run([]string{"-quick", "-run", "fig1", "-out", filepath.Join(dir, "nope", "x")}, &out, &errBuf); code != 1 {
		t.Fatalf("bad out path should exit 1")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig7", "-csv-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // one per persona
		t.Fatalf("csv files = %d, want 3", len(entries))
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "enqueued_ms,") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
	if !strings.HasPrefix(entries[0].Name(), "fig7-windows") {
		t.Fatalf("file naming wrong: %s", entries[0].Name())
	}
}

func TestSVGReportExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig7", "-svg-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 3 personas × (events + histogram + cumulative).
	if len(entries) != 9 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("svg files = %v, want 9", names)
	}
}

func TestSVGExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig4,fig5", "-svg-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// fig4: 2 profiles; fig5: 1 event set + no reports (Fig5Result has no
	// Reports method).
	if len(entries) != 3 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("svg files = %v, want 3", names)
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg ") {
		t.Fatalf("not svg: %q", string(data[:20]))
	}
}
