package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"latlab/internal/trace"
)

func TestList(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, id := range []string{"fig1", "table1", "table2", "ext-slowcpu", "ext-attrib"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
	// Experiments are listed in groups.
	for _, header := range []string{"paper figures:", "paper tables & sections:", "extensions (beyond the paper):"} {
		if !strings.Contains(out.String(), header) {
			t.Fatalf("list missing group header %q:\n%s", header, out.String())
		}
	}
	// s54 (a section, not a figure or extension) lands in the tables group.
	tables := out.String()[strings.Index(out.String(), "paper tables"):strings.Index(out.String(), "extensions (")]
	if !strings.Contains(tables, "s54") {
		t.Fatalf("s54 not grouped under tables & sections:\n%s", tables)
	}
	// The machine table carries the era and description columns, and the
	// modern experiments and profiles are listed.
	for _, want := range []string{"era", "description", "ext-modern-dvfs",
		"m2026-pin", "the paper's experimental machine"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuickSubset(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig1,fig4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "Fig. 1") || !strings.Contains(got, "Fig. 4") {
		t.Fatalf("missing experiment output:\n%s", got)
	}
	if !strings.Contains(got, "====") {
		t.Fatalf("missing separator between experiments")
	}
	if !strings.Contains(got, "reproduces Fig. 1") {
		t.Fatalf("missing provenance footer")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-run", "fig99"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
	// The error names the valid ids, matching -machine's error style.
	if !strings.Contains(errBuf.String(), "valid:") || !strings.Contains(errBuf.String(), "fig1") {
		t.Fatalf("stderr missing valid-id list: %q", errBuf.String())
	}
}

// TestTraceAndAttribExport runs one experiment with span recording and
// checks the Chrome trace is loadable JSON in the trace-event shape and
// the attribution CSV round-trips through the trace parser.
func TestTraceAndAttribExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	attrPath := filepath.Join(dir, "attrib.csv")
	var out, errBuf strings.Builder
	code := run([]string{"-quick", "-run", "ext-attrib", "-trace", tracePath, "-attrib", attrPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace shape wrong: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	sawMeta, sawComplete := false, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			sawMeta = true
		case "X":
			sawComplete = true
		}
	}
	if !sawMeta || !sawComplete {
		t.Fatalf("trace missing metadata or complete events (M=%v X=%v)", sawMeta, sawComplete)
	}

	f, err := os.Open(attrPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ParseAttribCSV(f)
	if err != nil {
		t.Fatalf("attribution CSV does not parse: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("attribution CSV has no episodes")
	}
	for _, r := range recs {
		if !strings.Contains(r.Label, "Windows NT") || !strings.Contains(r.Label, "WM_") {
			t.Fatalf("episode label %q missing track or message name", r.Label)
		}
		if r.Latency() <= 0 || len(r.Causes) == 0 {
			t.Fatalf("degenerate episode record: %+v", r)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestOutFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.txt")
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig1", "-out", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig. 1") {
		t.Fatalf("out file missing content")
	}
	// Bad out path errors.
	if code := run([]string{"-quick", "-run", "fig1", "-out", filepath.Join(dir, "nope", "x")}, &out, &errBuf); code != 1 {
		t.Fatalf("bad out path should exit 1")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig7", "-csv-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // one per persona
		t.Fatalf("csv files = %d, want 3", len(entries))
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "enqueued_ms,") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
	if !strings.HasPrefix(entries[0].Name(), "fig7-windows") {
		t.Fatalf("file naming wrong: %s", entries[0].Name())
	}
}

func TestSVGReportExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig7", "-svg-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 3 personas × (events + histogram + cumulative).
	if len(entries) != 9 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("svg files = %v, want 9", names)
	}
}

func TestSVGExport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig4,fig5", "-svg-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// fig4: 2 profiles; fig5: 1 event set + no reports (Fig5Result has no
	// Reports method).
	if len(entries) != 3 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("svg files = %v, want 3", names)
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg ") {
		t.Fatalf("not svg: %q", string(data[:20]))
	}
}

// TestJobsDeterminism runs the full quick suite at -jobs 1, 4, and 8 and
// asserts the rendered output is byte-identical and the JSON manifests
// are identical modulo timing fields (and the jobs count itself, which
// is part of the run configuration being varied).
func TestJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite three times")
	}
	type result struct {
		render string
		man    map[string]any
	}
	dir := t.TempDir()
	results := make(map[int]result)
	for _, jobs := range []int{1, 4, 8} {
		path := filepath.Join(dir, fmt.Sprintf("manifest-%d.json", jobs))
		var out, errBuf strings.Builder
		if code := run([]string{"-quick", "-jobs", strconv.Itoa(jobs), "-json", path}, &out, &errBuf); code != 0 {
			t.Fatalf("jobs=%d exit %d: %s", jobs, code, errBuf.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var man map[string]any
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatalf("jobs=%d manifest not JSON: %v", jobs, err)
		}
		stripTimingFields(man)
		results[jobs] = result{render: out.String(), man: man}
	}
	base := results[1]
	for _, jobs := range []int{4, 8} {
		r := results[jobs]
		if r.render != base.render {
			t.Errorf("-jobs %d render differs from -jobs 1 (lens %d vs %d)", jobs, len(r.render), len(base.render))
		}
		got, _ := json.Marshal(r.man)
		want, _ := json.Marshal(base.man)
		if string(got) != string(want) {
			t.Errorf("-jobs %d manifest differs from -jobs 1:\n got: %s\nwant: %s", jobs, got, want)
		}
	}
}

// stripTimingFields zeroes the manifest fields that legitimately vary
// between runs: wall-clock timings, the start stamp, and the varied jobs
// count.
func stripTimingFields(man map[string]any) {
	delete(man, "started_at")
	delete(man, "wall_seconds")
	delete(man, "jobs")
	if recs, ok := man["records"].([]any); ok {
		for _, r := range recs {
			if rec, ok := r.(map[string]any); ok {
				delete(rec, "wall_seconds")
			}
		}
	}
}

// TestFaultExperimentsDeterministicAcrossJobs is the -jobs property for
// the fault-injection family specifically: the plan is derived from the
// seed alone, so the same seed must give byte-identical renders however
// the worker pool schedules the clean and degraded runs.
func TestFaultExperimentsDeterministicAcrossJobs(t *testing.T) {
	var renders []string
	for _, jobs := range []int{1, 8} {
		var out, errBuf strings.Builder
		code := run([]string{"-quick", "-run", "ext-faults-disk,ext-faults-irq,ext-faults-cache",
			"-jobs", strconv.Itoa(jobs)}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("jobs=%d exit %d: %s", jobs, code, errBuf.String())
		}
		renders = append(renders, out.String())
	}
	if renders[0] != renders[1] {
		t.Fatalf("fault suite render differs between -jobs 1 and -jobs 8 (lens %d vs %d)",
			len(renders[0]), len(renders[1]))
	}
}

// TestTraceDeterministicAcrossJobs is the -jobs property for the span
// exports: track naming must not depend on pool completion order. The
// experiment set covers the two historical hazards — ext-interrupts
// boots several same-named rigs per persona (suffix order), and
// fig8+table1 share the PowerPoint memo (whichever spec simulates it
// deposits its spans).
func TestTraceDeterministicAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	var exports [][2][]byte
	for _, jobs := range []int{1, 8} {
		tr := filepath.Join(dir, fmt.Sprintf("t%d.json", jobs))
		at := filepath.Join(dir, fmt.Sprintf("a%d.csv", jobs))
		var out, errBuf strings.Builder
		code := run([]string{"-quick", "-run", "ext-interrupts,fig8,table1",
			"-jobs", strconv.Itoa(jobs), "-trace", tr, "-attrib", at}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("jobs=%d exit %d: %s", jobs, code, errBuf.String())
		}
		trData, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		atData, err := os.ReadFile(at)
		if err != nil {
			t.Fatal(err)
		}
		exports = append(exports, [2][]byte{trData, atData})
	}
	if !bytes.Equal(exports[0][0], exports[1][0]) {
		t.Errorf("trace JSON differs between -jobs 1 and -jobs 8 (lens %d vs %d)",
			len(exports[0][0]), len(exports[1][0]))
	}
	if !bytes.Equal(exports[0][1], exports[1][1]) {
		t.Errorf("attrib CSV differs between -jobs 1 and -jobs 8 (lens %d vs %d)",
			len(exports[0][1]), len(exports[1][1]))
	}
}

func TestJSONManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig1,fig4", "-jobs", "2", "-json", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Jobs    int `json:"jobs"`
		Records []struct {
			ID          string  `json:"id"`
			WallSeconds float64 `json:"wall_seconds"`
			Error       string  `json:"error"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if man.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2", man.Jobs)
	}
	if len(man.Records) != 2 || man.Records[0].ID != "fig1" || man.Records[1].ID != "fig4" {
		t.Fatalf("records wrong: %+v", man.Records)
	}
	for _, r := range man.Records {
		if r.WallSeconds <= 0 || r.Error != "" {
			t.Fatalf("record %s: %+v", r.ID, r)
		}
	}
}

func TestTimeoutProducesFailedRecordAndExit1(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	var out, errBuf strings.Builder
	code := run([]string{"-quick", "-run", "fig1,fig4", "-timeout", "1ns", "-json", path}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "timed out") {
		t.Fatalf("stderr missing timeout notice: %q", errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"timed_out": true`) {
		t.Fatalf("manifest missing timed_out flag:\n%s", data)
	}
}

func TestExportErrorLeavesNoOutFile(t *testing.T) {
	dir := t.TempDir()
	// A regular file where -svg-dir expects a directory makes export fail.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "results.txt")
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "fig4", "-svg-dir", blocker, "-out", outPath}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errBuf.String())
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatalf("truncated -out file left behind (stat err = %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".results.txt.tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
