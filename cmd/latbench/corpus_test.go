package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"latlab/internal/scenario"
)

// corpusDir is the committed scenario corpus this binary replays with
// -run corpus.
const corpusDir = "../../testdata/scenarios"

// TestCorpusGolden replays every committed scenario document through
// the full CLI path (-scenario, quick mode) and locks the rendering
// byte-for-byte. The ext-faults-* twins share golden files with their
// Go-registered counterparts from TestGoldenQuick — that sharing is the
// proof that a file-backed experiment and a registered one produce
// identical output — while the fuzzer-found fz-* documents get goldens
// of their own (regenerate with -update). Because fz-* documents pin
// their seed and machine, their cliff numbers reproduce here whatever
// the environment.
func TestCorpusGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario documents in %s", corpusDir)
	}
	sort.Strings(paths)
	for _, path := range paths {
		path := path
		doc, err := scenario.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(doc.ID, func(t *testing.T) {
			t.Parallel()
			var out, errBuf strings.Builder
			if code := run([]string{"-quick", "-scenario", path}, &out, &errBuf); code != 0 {
				t.Fatalf("exit %d: %s", code, errBuf.String())
			}
			golden := filepath.Join("testdata", "golden", doc.ID+".txt")
			if *update && !strings.HasPrefix(doc.ID, "ext-") {
				// Twin goldens belong to TestGoldenQuick; rewriting them here
				// would mask a twin-vs-registered divergence.
				if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./cmd/latbench -update`): %v", err)
			}
			if !bytes.Equal(want, []byte(out.String())) {
				t.Fatalf("output differs from %s (lens %d vs %d):\n%s",
					golden, len(want), out.Len(), firstDiff(want, []byte(out.String())))
			}
		})
	}
}

// TestCorpusGoldenBatched replays the same corpus with -engine batched
// and requires every rendering to match the reference goldens byte for
// byte — the CLI-level proof that the calendar queue and analytic
// idle-span elision change nothing observable. `make batch-check` runs
// this; it never rewrites goldens (those belong to TestCorpusGolden).
func TestCorpusGoldenBatched(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenario documents in %s", corpusDir)
	}
	sort.Strings(paths)
	for _, path := range paths {
		path := path
		doc, err := scenario.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(doc.ID, func(t *testing.T) {
			t.Parallel()
			var out, errBuf strings.Builder
			if code := run([]string{"-quick", "-engine", "batched", "-scenario", path}, &out, &errBuf); code != 0 {
				t.Fatalf("exit %d: %s", code, errBuf.String())
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", doc.ID+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./cmd/latbench -update`): %v", err)
			}
			if !bytes.Equal(want, []byte(out.String())) {
				t.Fatalf("batched-engine output differs from the reference golden (lens %d vs %d):\n%s",
					len(want), out.Len(), firstDiff(want, []byte(out.String())))
			}
		})
	}
}

// TestRunCorpus exercises the -run corpus suite path end to end: every
// document compiles, runs, and renders, and a scenario that pins a
// machine conflicting with an explicit -machine is refused without
// -force.
func TestRunCorpus(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-quick", "-run", "corpus", "-corpus", corpusDir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, id := range []string{"ext-faults-disk", "ext-faults-irq", "ext-faults-cache"} {
		if !strings.Contains(out.String(), "["+id+":") {
			t.Errorf("corpus output missing %s", id)
		}
	}

	out.Reset()
	errBuf.Reset()
	// The corpus contains fz-* documents pinning machines other than
	// p200, so an explicit -machine must be refused...
	if code := run([]string{"-quick", "-run", "corpus", "-corpus", corpusDir, "-machine", "p200"}, &out, &errBuf); code != 1 {
		t.Fatalf("conflicting -machine: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "-force") {
		t.Errorf("conflict error should mention -force, got: %s", errBuf.String())
	}

	out.Reset()
	errBuf.Reset()
	// ...and -force lets the scenarios win.
	if code := run([]string{"-quick", "-run", "corpus", "-corpus", corpusDir, "-machine", "p200", "-force"}, &out, &errBuf); code != 0 {
		t.Fatalf("-force: exit %d: %s", code, errBuf.String())
	}
}
