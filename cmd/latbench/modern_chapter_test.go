package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modernChapterIDs are the experiments whose output the EXPERIMENTS.md
// modern chapter must quote verbatim.
var modernChapterIDs = []string{
	"ext-modern-clock", "ext-modern-dvfs", "ext-modern-nvme",
	"ext-modern-irq", "ext-modern-smt",
}

// TestModernChapter pins the "1996 methodology on 2026 hardware"
// chapter of EXPERIMENTS.md to the golden corpus: every fenced block
// tagged `<!-- modern-golden: <id> -->` must be a verbatim excerpt of
// testdata/golden/<id>.txt, and every ext-modern experiment must be
// quoted. A diff here means either the simulation changed (regenerate
// the goldens, then update the chapter) or the chapter drifted from
// what the code actually produces.
func TestModernChapter(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	quoted := map[string]bool{}
	for i := 0; i < len(lines); i++ {
		tag := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(tag, "<!-- modern-golden:") {
			continue
		}
		id := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(tag, "<!-- modern-golden:"), "-->"))
		// The tag must be followed (blank lines allowed) by a fence.
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || !strings.HasPrefix(strings.TrimSpace(lines[j]), "```") {
			t.Fatalf("EXPERIMENTS.md:%d: modern-golden tag %q not followed by a fenced block", i+1, id)
		}
		var body []string
		for j++; j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), "```"); j++ {
			body = append(body, lines[j])
		}
		golden, err := os.ReadFile(filepath.Join("testdata", "golden", id+".txt"))
		if err != nil {
			t.Fatalf("EXPERIMENTS.md:%d: tag references unknown golden %q: %v", i+1, id, err)
		}
		excerpt := strings.Join(body, "\n")
		if !strings.Contains(string(golden), excerpt) {
			t.Errorf("EXPERIMENTS.md:%d: quoted %s block is not a verbatim excerpt of its golden;\nquoted:\n%s",
				i+1, id, excerpt)
		}
		quoted[id] = true
		i = j
	}
	for _, id := range modernChapterIDs {
		if !quoted[id] {
			t.Errorf("EXPERIMENTS.md modern chapter does not quote %s (no modern-golden tag)", id)
		}
	}
}
