// Command latbench runs latlab's reproduction of the paper's evaluation:
// every table and figure, rendered in the paper's format.
//
// Experiments are scheduled on a worker pool (-jobs, default NumCPU) and
// rendered in paper order whatever the completion order, so the text
// output is byte-identical for any job count. A panicking or timed-out
// experiment becomes a failed run record (and exit code 1) instead of
// aborting the suite; -json writes one RunRecord per experiment.
//
// Usage:
//
//	latbench -list
//	latbench [-quick] [-seed N] [-run fig7,table1] [-machine p200]
//	         [-out results.txt] [-jobs N] [-timeout 5m] [-retries N]
//	         [-json manifest.json] [-csv-dir dir] [-svg-dir dir]
//	         [-trace trace.json] [-attrib attrib.csv]
//	         [-engine reference|batched]
//	latbench -scenario doc.json [-force]
//	latbench -run corpus [-corpus dir]
//
// -scenario compiles and runs a single declarative scenario document
// (see README "Scenarios"); -run corpus replays every document in the
// committed corpus directory. A scenario that pins its own machine
// conflicts with an explicit -machine: latbench refuses unless -force
// is given, in which case the scenario wins.
//
// -engine batched runs every experiment on the batched simulation core
// (calendar event queue plus analytic idle-span skipping). Outputs are
// byte-identical to the default reference engine; `make batch-check`
// enforces that on the golden scenario corpus.
//
// -trace records latency-attribution spans on every simulated machine
// and writes them as Chrome trace-event JSON (load the file in Perfetto
// or chrome://tracing); -attrib reduces the same spans to a per-episode
// "where did the time go" CSV (render it with traceview -attrib).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"latlab/internal/experiments"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/runner"
	"latlab/internal/scenario"
	"latlab/internal/spans"
	"latlab/internal/trace"
	"latlab/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list available experiments and exit")
		quick     = fs.Bool("quick", false, "trim workload sizes (for smoke runs)")
		seed      = fs.Uint64("seed", 1996, "seed for stochastic models")
		runArg    = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		outPath   = fs.String("out", "", "write results to this file instead of stdout")
		csvDir    = fs.String("csv-dir", "", "also export raw per-event CSVs for experiments that have them")
		svgDir    = fs.String("svg-dir", "", "also export SVG figures for experiments that have them")
		machineID = fs.String("machine", "p100", "hardware profile to run on (see -list)")
		jobs      = fs.Int("jobs", runtime.NumCPU(), "run up to N experiments concurrently")
		timeout   = fs.Duration("timeout", 0, "per-experiment-attempt timeout (0 = none)")
		retries   = fs.Int("retries", 0, "retry a failed experiment up to N times with perturbed seeds")
		jsonPath  = fs.String("json", "", "write a JSON run manifest to this file")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON of every machine's spans (Perfetto-loadable)")
		attrPath  = fs.String("attrib", "", "write a per-episode latency-attribution CSV of every machine's spans")
		scenPath  = fs.String("scenario", "", "compile and run the scenario document at this path")
		corpusDir = fs.String("corpus", "testdata/scenarios", "scenario corpus directory replayed by -run corpus")
		force     = fs.Bool("force", false, "let a scenario's pinned machine silently override an explicit -machine")
		engineArg = fs.String("engine", "reference", "simulation engine: reference or batched (byte-identical outputs)")
	)
	fs.Usage = func() { groupedUsage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	userSet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { userSet[f.Name] = true })

	var eng kernel.Engine
	switch *engineArg {
	case "reference":
	case "batched":
		eng = kernel.BatchedEngine()
	default:
		fmt.Fprintf(stderr, "latbench: -engine must be reference or batched, got %q\n", *engineArg)
		return 2
	}

	if *list {
		groups := []struct {
			title string
			match func(id string) bool
		}{
			{"paper figures", func(id string) bool { return strings.HasPrefix(id, "fig") }},
			{"paper tables & sections", func(id string) bool { return !strings.HasPrefix(id, "ext-") }},
			{"extensions (beyond the paper)", func(id string) bool { return true }},
		}
		claimed := map[string]bool{}
		for i, g := range groups {
			first := true
			for _, s := range experiments.All() {
				if claimed[s.ID] || !g.match(s.ID) {
					continue
				}
				claimed[s.ID] = true
				if first {
					if i > 0 {
						fmt.Fprintln(stdout)
					}
					fmt.Fprintf(stdout, "%s:\n", g.title)
					first = false
				}
				fmt.Fprintf(stdout, "  %-14s %-55s %s\n", s.ID, s.Title, s.Paper)
			}
		}
		fmt.Fprintf(stdout, "\nmachine profiles (-machine):\n")
		fmt.Fprintf(stdout, "%-11s %-33s %-5s %8s %9s %7s %6s  %s\n",
			"id", "name", "era", "clock", "itlb/dtlb", "l2", "tagged", "description")
		for _, m := range machine.All() {
			l2 := fmt.Sprintf("%dK", m.L2Bytes>>10)
			if m.L2Bytes == 0 {
				l2 = "none"
			}
			fmt.Fprintf(stdout, "%-11s %-33s %-5s %5dMHz %5d/%-4d %6s %6v  %s\n",
				m.Short, m.Name, m.Era, int64(m.ClockHz)/1_000_000,
				m.ITLBEntries, m.DTLBEntries, l2, m.TaggedTLB, m.Desc)
		}
		return 0
	}

	prof, ok := machine.ByShort(*machineID)
	if !ok {
		fmt.Fprintf(stderr, "latbench: unknown machine %q (valid: %s)\n",
			*machineID, strings.Join(machine.Shorts(), ", "))
		return 1
	}

	w := stdout
	var outFile *atomicFile
	if *outPath != "" {
		af, err := newAtomicFile(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
		// A mid-suite failure discards the temp file instead of leaving a
		// truncated results file at -out.
		defer af.abort()
		outFile = af
		w = af
	}

	var specs []experiments.Spec
	switch {
	case *scenPath != "":
		if userSet["run"] {
			fmt.Fprintf(stderr, "latbench: -scenario and -run select different work; use one\n")
			return 1
		}
		doc, err := scenario.ParseFile(*scenPath)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
		// Compiled, not registered: a file may deliberately reuse a
		// registered id (the testdata twins do).
		spec, err := experiments.FromScenario(doc)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
		specs = []experiments.Spec{spec}
	case *runArg == "corpus":
		var err error
		specs, err = corpusSpecs(*corpusDir)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
	case *runArg == "all":
		specs = experiments.All()
	default:
		for _, id := range strings.Split(*runArg, ",") {
			s, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				var ids []string
				for _, sp := range experiments.All() {
					ids = append(ids, sp.ID)
				}
				fmt.Fprintf(stderr, "latbench: unknown experiment %q (valid: %s)\n",
					id, strings.Join(ids, ", "))
				return 1
			}
			specs = append(specs, s)
		}
	}

	// An explicit -machine and a scenario that pins its own machine are
	// contradictory orders; the scenario would win silently (its pinned
	// machine is part of its reproducibility contract), so demand -force.
	if userSet["machine"] && !*force {
		for _, s := range specs {
			if s.Scenario != nil && s.Scenario.Machine != "" && s.Scenario.Machine != *machineID {
				fmt.Fprintf(stderr, "latbench: -machine %s conflicts with scenario %s, which pins machine %s (the scenario wins; pass -force to accept that)\n",
					*machineID, s.ID, s.Scenario.Machine)
				return 1
			}
		}
	}

	rendered := 0
	emit := func(out runner.Outcome) error {
		if out.Record.Failed() {
			kind := "failed"
			switch {
			case out.Record.TimedOut:
				kind = "timed out"
			case out.Record.Panicked:
				kind = "panicked"
			}
			fmt.Fprintf(stderr, "latbench: %s %s: %s\n", out.Spec.ID, kind, firstLine(out.Record.Error))
			return nil
		}
		if rendered > 0 {
			fmt.Fprintln(w, strings.Repeat("=", 90))
		}
		rendered++
		if err := out.Result.Render(w); err != nil {
			return fmt.Errorf("rendering %s: %w", out.Spec.ID, err)
		}
		fmt.Fprintf(w, "\n[%s: %s — reproduces %s]\n", out.Spec.ID, out.Spec.Title, out.Spec.Paper)
		return exportArtifacts(*csvDir, *svgDir, out.Spec.ID, out.Result)
	}

	var col *spans.Collector
	if *tracePath != "" || *attrPath != "" {
		col = &spans.Collector{}
	}
	opt := runner.Options{
		Jobs:    *jobs,
		Timeout: *timeout,
		Retries: *retries,
		Config:  experiments.Config{Seed: *seed, Quick: *quick, Machine: prof, Trace: col, Engine: eng},
	}
	man, err := runner.Run(context.Background(), specs, opt, emit)
	if err != nil {
		fmt.Fprintf(stderr, "latbench: %v\n", err)
		return 1
	}

	if *tracePath != "" {
		if err := writeAtomic(*tracePath, func(w io.Writer) error {
			return spans.WriteChrome(w, col.Tracks())
		}); err != nil {
			fmt.Fprintf(stderr, "latbench: writing trace: %v\n", err)
			return 1
		}
	}
	if *attrPath != "" {
		if err := writeAtomic(*attrPath, func(w io.Writer) error {
			return trace.WriteAttribCSV(w, attribRecords(col.Tracks()))
		}); err != nil {
			fmt.Fprintf(stderr, "latbench: writing attribution: %v\n", err)
			return 1
		}
	}

	if *jsonPath != "" {
		jf, err := newAtomicFile(*jsonPath)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
		defer jf.abort()
		if err := man.WriteJSON(jf); err != nil {
			fmt.Fprintf(stderr, "latbench: writing manifest: %v\n", err)
			return 1
		}
		if err := jf.commit(); err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
	}

	if outFile != nil {
		if err := outFile.commit(); err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
	}
	if man.Failed() > 0 {
		fmt.Fprintf(stderr, "latbench: %d of %d experiments failed\n", man.Failed(), len(man.Records))
		return 1
	}
	return 0
}

// corpusSpecs compiles every scenario document in dir, in path order,
// so a corpus replay is a deterministic suite.
func corpusSpecs(dir string) ([]experiments.Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no scenario documents (*.json) in %s", dir)
	}
	sort.Strings(paths)
	var specs []experiments.Spec
	for _, p := range paths {
		doc, err := scenario.ParseFile(p)
		if err != nil {
			return nil, err
		}
		spec, err := experiments.FromScenario(doc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// groupedUsage prints -h output with the flags grouped by what they
// control instead of flag's flat alphabetical list.
func groupedUsage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "Usage: latbench [flags]\n")
	groups := []struct {
		title string
		names []string
	}{
		{"run selection", []string{"list", "run", "quick", "seed", "jobs", "timeout", "retries"}},
		{"output", []string{"out", "json", "csv-dir", "svg-dir", "trace", "attrib"}},
		{"machine & scenario", []string{"machine", "scenario", "corpus", "force"}},
	}
	for _, g := range groups {
		fmt.Fprintf(w, "\n%s:\n", g.title)
		for _, name := range g.names {
			f := fs.Lookup(name)
			if f == nil {
				continue
			}
			typ, usage := flag.UnquoteUsage(f)
			line := "  -" + f.Name
			if typ != "" {
				line += " " + typ
			}
			fmt.Fprintf(w, "%s\n    \t%s", line, usage)
			switch f.DefValue {
			case "", "false", "0", "0s":
				// zero default: not worth printing
			default:
				fmt.Fprintf(w, " (default %s)", f.DefValue)
			}
			fmt.Fprintln(w)
		}
	}
}

// attribRecords reduces collected span tracks to per-episode
// attribution records: one row per interactive event, labelled
// "track: message", with its wall time decomposed by cause.
func attribRecords(tracks []spans.Track) []trace.AttribRecord {
	var recs []trace.AttribRecord
	for _, tr := range tracks {
		eps, _ := spans.Episodes(tr.Spans)
		for _, ep := range eps {
			recs = append(recs, trace.AttribRecord{
				Label:  tr.Name + ": " + ep.Label,
				Start:  ep.Start,
				End:    ep.End,
				Causes: ep.A.CauseDurations(),
			})
		}
	}
	return recs
}

// writeAtomic renders through an atomicFile so a failed export never
// leaves a truncated file at path.
func writeAtomic(path string, render func(w io.Writer) error) error {
	af, err := newAtomicFile(path)
	if err != nil {
		return err
	}
	defer af.abort()
	if err := render(af); err != nil {
		return err
	}
	return af.commit()
}

// firstLine trims a multi-line error (panic messages carry stacks) for
// the console; the full text is preserved in the JSON manifest.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// atomicFile is a buffered file written under a temporary name and
// renamed into place only on commit, so failures never leave a truncated
// results file behind.
type atomicFile struct {
	path string
	f    *os.File
	bw   *bufio.Writer
	done bool
}

func newAtomicFile(path string) (*atomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &atomicFile{path: path, f: f, bw: bufio.NewWriter(f)}, nil
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.bw.Write(p) }

// commit flushes the buffer and renames the temp file to the final path.
func (a *atomicFile) commit() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.bw.Flush(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.path)
}

// abort discards the temp file; it is a no-op after commit.
func (a *atomicFile) abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// exportArtifacts writes every artifact the result carries: events as
// CSV (when -csv-dir is set) and events/profiles/reports as SVGs (when
// -svg-dir is set). Artifacts are exported in the order the result
// declares them, so export is deterministic.
func exportArtifacts(csvDir, svgDir, id string, res experiments.Result) error {
	ap, ok := res.(experiments.ArtifactProvider)
	if !ok {
		return nil
	}
	for _, a := range ap.Artifacts() {
		if csvDir != "" && a.Kind == experiments.ArtifactEvents {
			if err := writeCSV(csvDir, id, a.Name, a); err != nil {
				return fmt.Errorf("exporting %s: %w", id, err)
			}
		}
		if svgDir != "" {
			if err := writeSVGs(svgDir, id, a); err != nil {
				return fmt.Errorf("exporting %s: %w", id, err)
			}
		}
	}
	return nil
}

func slug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

func writeCSV(dir, id, name string, a experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(fmt.Sprintf("%s/%s-%s.csv", dir, id, slug(name)))
	if err != nil {
		return err
	}
	if err := viz.EventsCSV(f, a.Events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSVGs renders one artifact's browser-viewable figures: a time
// series per event set, histogram + cumulative curve per report, and a
// utilization plot per profile.
func writeSVGs(dir, id string, a experiments.Artifact) error {
	writeSVG := func(name string, render func(w io.Writer) error) error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(fmt.Sprintf("%s/%s-%s.svg", dir, id, slug(name)))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	switch a.Kind {
	case experiments.ArtifactEvents:
		return writeSVG(a.Name+"-events", func(w io.Writer) error {
			return viz.TimeSeriesSVG(w, fmt.Sprintf("%s — %s", id, a.Name), a.Events, 100)
		})
	case experiments.ArtifactProfile:
		return writeSVG(a.Name+"-profile", func(w io.Writer) error {
			return viz.ProfileSVG(w, fmt.Sprintf("%s — %s", id, a.Name), a.Profile)
		})
	case experiments.ArtifactReport:
		rep := a.Report
		lats := rep.Latencies()
		hi := 1.0
		for _, l := range lats {
			if l > hi {
				hi = l
			}
		}
		if err := writeSVG(a.Name+"-histogram", func(w io.Writer) error {
			return viz.HistogramSVG(w, fmt.Sprintf("%s — %s", id, a.Name),
				rep.Histogram(0, hi*1.01, 24))
		}); err != nil {
			return err
		}
		return writeSVG(a.Name+"-cumulative", func(w io.Writer) error {
			return viz.CumulativeSVG(w, fmt.Sprintf("%s — %s", id, a.Name),
				rep.CumulativeCurve())
		})
	}
	return nil
}
