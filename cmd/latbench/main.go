// Command latbench runs latlab's reproduction of the paper's evaluation:
// every table and figure, rendered in the paper's format.
//
// Usage:
//
//	latbench -list
//	latbench [-quick] [-seed N] [-run fig7,table1] [-out results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"latlab/internal/experiments"
	"latlab/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available experiments and exit")
		quick   = fs.Bool("quick", false, "trim workload sizes (for smoke runs)")
		seed    = fs.Uint64("seed", 1996, "seed for stochastic models")
		runArg  = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		outPath = fs.String("out", "", "write results to this file instead of stdout")
		csvDir  = fs.String("csv-dir", "", "also export raw per-event CSVs for experiments that have them")
		svgDir  = fs.String("svg-dir", "", "also export SVG figures for experiments that have them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "%-14s %-55s %s\n", "id", "title", "paper")
		for _, s := range experiments.All() {
			fmt.Fprintf(stdout, "%-14s %-55s %s\n", s.ID, s.Title, s.Paper)
		}
		return 0
	}

	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "latbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var specs []experiments.Spec
	if *runArg == "all" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*runArg, ",") {
			s, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "latbench: unknown experiment %q (try -list)\n", id)
				return 1
			}
			specs = append(specs, s)
		}
	}

	for i, s := range specs {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("=", 90))
		}
		start := time.Now()
		res := s.Run(cfg)
		if err := res.Render(w); err != nil {
			fmt.Fprintf(stderr, "latbench: rendering %s: %v\n", s.ID, err)
			return 1
		}
		fmt.Fprintf(w, "\n[%s: %s — reproduces %s; ran in %.1fs]\n",
			s.ID, s.Title, s.Paper, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := exportCSVs(*csvDir, s.ID, res); err != nil {
				fmt.Fprintf(stderr, "latbench: exporting %s: %v\n", s.ID, err)
				return 1
			}
		}
		if *svgDir != "" {
			if err := exportSVGs(*svgDir, s.ID, res); err != nil {
				fmt.Fprintf(stderr, "latbench: exporting %s: %v\n", s.ID, err)
				return 1
			}
		}
	}
	return 0
}

// exportSVGs writes browser-viewable figures: an event time series per
// event set, and a utilization profile per profile set.
func exportSVGs(dir, id string, res experiments.Result) error {
	writeSVG := func(name string, render func(w io.Writer) error) error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		slug := strings.ToLower(strings.ReplaceAll(name, " ", "-"))
		f, err := os.Create(fmt.Sprintf("%s/%s-%s.svg", dir, id, slug))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if exp, ok := res.(experiments.EventsExporter); ok {
		for name, events := range exp.EventSets() {
			name, events := name, events
			if err := writeSVG(name+"-events", func(w io.Writer) error {
				return viz.TimeSeriesSVG(w, fmt.Sprintf("%s — %s", id, name), events, 100)
			}); err != nil {
				return err
			}
		}
	}
	if exp, ok := res.(experiments.ReportExporter); ok {
		for name, rep := range exp.Reports() {
			name, rep := name, rep
			lats := rep.Latencies()
			hi := 1.0
			for _, l := range lats {
				if l > hi {
					hi = l
				}
			}
			if err := writeSVG(name+"-histogram", func(w io.Writer) error {
				return viz.HistogramSVG(w, fmt.Sprintf("%s — %s", id, name),
					rep.Histogram(0, hi*1.01, 24))
			}); err != nil {
				return err
			}
			if err := writeSVG(name+"-cumulative", func(w io.Writer) error {
				return viz.CumulativeSVG(w, fmt.Sprintf("%s — %s", id, name),
					rep.CumulativeCurve())
			}); err != nil {
				return err
			}
		}
	}
	if exp, ok := res.(experiments.ProfileExporter); ok {
		for name, pts := range exp.ProfileSets() {
			name, pts := name, pts
			if err := writeSVG(name+"-profile", func(w io.Writer) error {
				return viz.ProfileSVG(w, fmt.Sprintf("%s — %s", id, name), pts)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportCSVs writes one events CSV per named set for results that
// implement experiments.EventsExporter.
func exportCSVs(dir, id string, res experiments.Result) error {
	exp, ok := res.(experiments.EventsExporter)
	if !ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, events := range exp.EventSets() {
		slug := strings.ToLower(strings.ReplaceAll(name, " ", "-"))
		path := fmt.Sprintf("%s/%s-%s.csv", dir, id, slug)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := viz.EventsCSV(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
