package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"latlab/internal/experiments"
)

// -update regenerates the golden corpus instead of comparing against it:
//
//	go test ./cmd/latbench -update
var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// TestGoldenQuick locks the quick-mode rendering of every registered
// experiment byte-for-byte. The simulator is deterministic by
// construction, so any diff here is a behaviour change — in particular
// the performance work on the event queue, scheduler, and trace path is
// required to leave this corpus untouched.
func TestGoldenQuick(t *testing.T) {
	for _, spec := range experiments.All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			var out, errBuf strings.Builder
			if code := run([]string{"-quick", "-run", spec.ID}, &out, &errBuf); code != 0 {
				t.Fatalf("exit %d: %s", code, errBuf.String())
			}
			path := filepath.Join("testdata", "golden", spec.ID+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./cmd/latbench -update`): %v", err)
			}
			if !bytes.Equal(want, []byte(out.String())) {
				t.Fatalf("output differs from %s (lens %d vs %d):\n%s",
					path, len(want), out.Len(), firstDiff(want, []byte(out.String())))
			}
		})
	}
}

// firstDiff renders the first divergent line of two byte slices, with a
// little context, so a golden failure is actionable without an external
// diff tool.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "line " + strconv.Itoa(n+1) + ": one output is a prefix of the other"
}
