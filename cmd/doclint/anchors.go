package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// atxHeading matches an ATX heading line; group 1 is the heading text.
var atxHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slugify converts a heading to its GitHub-style anchor: strip inline
// markup characters, lowercase, drop everything but letters, digits,
// spaces, hyphens and underscores, then turn spaces into hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingAnchors extracts the anchor set of one Markdown document,
// applying GitHub's -1, -2 suffixing to duplicate headings. Fenced code
// blocks are ignored.
func headingAnchors(data []byte) map[string]bool {
	anchors := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := atxHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors
}

// lintMarkdownAnchors checks every `#fragment` link in the repository's
// Markdown files — both same-document (`#usage`) and cross-document
// (`DESIGN.md#kernel`) — against the GitHub-style anchors of the target
// document's headings. Non-Markdown targets and external schemes are
// not checked; fenced code blocks are ignored.
func lintMarkdownAnchors(root string) ([]string, error) {
	// First pass: collect every document's anchor set.
	docs := make(map[string]map[string]bool)
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		docs[path] = headingAnchors(data)
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Second pass: resolve every fragment link against the anchor sets.
	var findings []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				file, frag, ok := strings.Cut(target, "#")
				if !ok || frag == "" {
					continue
				}
				doc := path
				if file != "" {
					if !strings.HasSuffix(file, ".md") {
						continue // fragment into a non-Markdown file
					}
					doc = filepath.Join(filepath.Dir(path), file)
				}
				anchors, found := docs[doc]
				if !found {
					continue // missing file already reported by lintMarkdownLinks
				}
				if !anchors[frag] {
					findings = append(findings,
						fmt.Sprintf("%s:%d: broken anchor %s (no heading slugs to #%s in %s)",
							path, i+1, m[1], frag, filepath.Base(doc)))
				}
			}
		}
	}
	return findings, nil
}
