// Command doclint enforces the repository's documentation contract:
// every package under internal/ carries a package comment, every
// exported symbol there carries a doc comment, every relative link
// in the repository's Markdown files resolves to an existing file, and
// every `#fragment` link (same-document or cross-document) resolves to
// a real heading's GitHub-style anchor.
// `make doclint` runs it as part of `make verify`
// (LATLAB_SKIP_DOCLINT=1 opts out).
//
// Usage:
//
//	doclint [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("doclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "repository root to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var findings []string
	godoc, err := lintGoDocs(filepath.Join(*root, "internal"))
	if err != nil {
		fmt.Fprintln(stderr, "doclint:", err)
		return 2
	}
	findings = append(findings, godoc...)
	links, err := lintMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintln(stderr, "doclint:", err)
		return 2
	}
	findings = append(findings, links...)
	anchors, err := lintMarkdownAnchors(*root)
	if err != nil {
		fmt.Fprintln(stderr, "doclint:", err)
		return 2
	}
	findings = append(findings, anchors...)

	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "doclint: %d problems\n", len(findings))
		return 1
	}
	fmt.Fprintln(stdout, "doclint: ok")
	return 0
}

// lintGoDocs walks every package directory under dir and reports
// missing package comments and undocumented exported symbols. Test
// files are exempt.
func lintGoDocs(dir string) ([]string, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil, nil // nothing under internal/ to lint
	}
	var pkgDirs []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			p := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != p {
				pkgDirs = append(pkgDirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)

	var findings []string
	fset := token.NewFileSet()
	for _, p := range pkgDirs {
		pkgs, err := parser.ParseDir(fset, p, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			findings = append(findings, lintPackage(fset, p, pkg)...)
		}
	}
	return findings, nil
}

// lintPackage checks one parsed package: a package comment on some
// file, and a doc comment on every exported top-level symbol (methods
// included when their receiver type is itself exported).
func lintPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var findings []string
	hasPkgDoc := false
	var files []string
	for name := range pkg.Files {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		if pkg.Files[name].Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	for _, name := range files {
		for _, decl := range pkg.Files[name].Decls {
			findings = append(findings, lintDecl(fset, decl)...)
		}
	}
	return findings
}

// lintDecl reports undocumented exported symbols in one declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) []string {
	pos := func(p token.Pos) string {
		position := fset.Position(p)
		return fmt.Sprintf("%s:%d", position.Filename, position.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		kind := "function"
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := receiverName(d.Recv.List[0].Type)
			if recv != "" && !ast.IsExported(recv) {
				return nil // method of an unexported type
			}
			kind = "method"
			name = recv + "." + name
		}
		return []string{fmt.Sprintf("%s: exported %s %s has no doc comment", pos(d.Pos()), kind, name)}
	case *ast.GenDecl:
		if d.Doc != nil || d.Tok == token.IMPORT {
			return nil // a documented group covers its members
		}
		var findings []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil {
					findings = append(findings, fmt.Sprintf("%s: exported type %s has no doc comment", pos(s.Pos()), s.Name.Name))
				}
			case *ast.ValueSpec:
				if s.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						findings = append(findings, fmt.Sprintf("%s: exported %s %s has no doc comment", pos(s.Pos()), d.Tok, n.Name))
					}
				}
			}
		}
		return findings
	}
	return nil
}

// receiverName extracts the base type name of a method receiver.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	}
	return ""
}

// mdLink matches inline Markdown links and images; group 1 is the
// target.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// lintMarkdownLinks checks every *.md under root (skipping .git and
// testdata): relative link targets must exist on disk. External
// schemes and pure-anchor links are not checked (no network); fenced
// code blocks are ignored.
func lintMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken link %s", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return findings, err
}
