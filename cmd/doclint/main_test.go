package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under a
// fresh temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runLint runs doclint -root on the tree and returns (exit, stdout,
// stderr).
func runLint(t *testing.T, root string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root}, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ok/ok.go": `// Package ok is fully documented.
package ok

// Answer is the answer.
const Answer = 42

// Widget is a documented type.
type Widget struct{}

// Spin is a documented method.
func (w *Widget) Spin() {}

// Do is a documented function.
func Do() {}
`,
		"README.md": "# Top\n\nSee [the doc](docs/guide.md) and [site](https://example.com) and [top](#top).\n",
		"docs/guide.md": "Back to [readme](../README.md).\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
	if !strings.Contains(out, "doclint: ok") {
		t.Errorf("stdout = %q, want doclint: ok", out)
	}
}

func TestMissingPackageComment(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/bare/bare.go": "package bare\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "package bare has no package comment") {
		t.Errorf("stdout = %q, want missing-package-comment finding", out)
	}
	if !strings.Contains(errOut, "doclint: 1 problems") {
		t.Errorf("stderr = %q, want problem count", errOut)
	}
}

func TestUndocumentedExports(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/gaps/gaps.go": `// Package gaps has documentation gaps.
package gaps

const Naked = 1

type Bare struct{}

func (b Bare) Method() {}

func Loose() {}

type hidden struct{}

func (h *hidden) Exported() {} // method of unexported type: exempt

func private() {}
`,
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	for _, want := range []string{
		"exported const Naked has no doc comment",
		"exported type Bare has no doc comment",
		"exported method Bare.Method has no doc comment",
		"exported function Loose has no doc comment",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
	for _, reject := range []string{"hidden", "private"} {
		if strings.Contains(out, reject) {
			t.Errorf("stdout flags unexported symbol %q:\n%s", reject, out)
		}
	}
}

func TestDocumentedGroupCoversMembers(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/grouped/grouped.go": `// Package grouped documents its const block once.
package grouped

// Sizes of things, in the repo's usual one-comment-per-block idiom.
const (
	Small = 1
	Large = 2
)
`,
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestTestFilesAndTestdataExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ok/ok.go": `// Package ok is documented.
package ok
`,
		"internal/ok/ok_test.go": `package ok

func Undocumented() {}
`,
		"internal/ok/testdata/frag.go": "package broken syntax here\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestBrokenMarkdownLink(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "A [dangling link](missing.md) here.\n",
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	if !strings.Contains(out, "README.md:1: broken link missing.md") {
		t.Errorf("stdout = %q, want broken-link finding with file:line", out)
	}
}

func TestMarkdownSkipsFencesAnchorsAndSchemes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"NOTES.md": "# Section\n\n```\n[inside fence](nope.md)\n```\n" +
			"[anchor](#section) [web](https://example.com/x.md) [mail](mailto:a@b.c)\n" +
			"[frag ok](REAL.md#part)\n",
		"REAL.md": "# Part\n\nreal\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestSlugify(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"Usage", "usage"},
		{"The 1996 methodology on 2026 hardware", "the-1996-methodology-on-2026-hardware"},
		{"`latbench` — the suite", "latbench--the-suite"},
		{"A.B/C (d)", "abc-d"},
	} {
		if got := slugify(tc.in); got != tc.want {
			t.Errorf("slugify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBrokenAnchors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "# Alpha\n\n[self ok](#alpha) [self bad](#beta)\n" +
			"[cross ok](OTHER.md#gamma-delta) [cross bad](OTHER.md#nope)\n",
		"OTHER.md": "## Gamma Delta\n",
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	for _, want := range []string{
		"README.md:3: broken anchor #beta",
		"README.md:4: broken anchor OTHER.md#nope",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
	for _, reject := range []string{"#alpha", "gamma-delta"} {
		if strings.Contains(out, reject) {
			t.Errorf("stdout flags valid anchor %q:\n%s", reject, out)
		}
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	root := writeTree(t, map[string]string{
		"DOC.md": "# Setup\n\n# Setup\n\n[first](#setup) [second](#setup-1) [third](#setup-2)\n",
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	if !strings.Contains(out, "broken anchor #setup-2") {
		t.Errorf("stdout = %q, want #setup-2 flagged", out)
	}
	if strings.Contains(out, "#setup-1") {
		t.Errorf("stdout flags valid duplicate-suffix anchor:\n%s", out)
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
