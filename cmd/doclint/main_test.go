package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under a
// fresh temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runLint runs doclint -root on the tree and returns (exit, stdout,
// stderr).
func runLint(t *testing.T, root string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root}, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ok/ok.go": `// Package ok is fully documented.
package ok

// Answer is the answer.
const Answer = 42

// Widget is a documented type.
type Widget struct{}

// Spin is a documented method.
func (w *Widget) Spin() {}

// Do is a documented function.
func Do() {}
`,
		"README.md": "See [the doc](docs/guide.md) and [site](https://example.com) and [top](#top).\n",
		"docs/guide.md": "Back to [readme](../README.md).\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
	if !strings.Contains(out, "doclint: ok") {
		t.Errorf("stdout = %q, want doclint: ok", out)
	}
}

func TestMissingPackageComment(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/bare/bare.go": "package bare\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "package bare has no package comment") {
		t.Errorf("stdout = %q, want missing-package-comment finding", out)
	}
	if !strings.Contains(errOut, "doclint: 1 problems") {
		t.Errorf("stderr = %q, want problem count", errOut)
	}
}

func TestUndocumentedExports(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/gaps/gaps.go": `// Package gaps has documentation gaps.
package gaps

const Naked = 1

type Bare struct{}

func (b Bare) Method() {}

func Loose() {}

type hidden struct{}

func (h *hidden) Exported() {} // method of unexported type: exempt

func private() {}
`,
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	for _, want := range []string{
		"exported const Naked has no doc comment",
		"exported type Bare has no doc comment",
		"exported method Bare.Method has no doc comment",
		"exported function Loose has no doc comment",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q; got:\n%s", want, out)
		}
	}
	for _, reject := range []string{"hidden", "private"} {
		if strings.Contains(out, reject) {
			t.Errorf("stdout flags unexported symbol %q:\n%s", reject, out)
		}
	}
}

func TestDocumentedGroupCoversMembers(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/grouped/grouped.go": `// Package grouped documents its const block once.
package grouped

// Sizes of things, in the repo's usual one-comment-per-block idiom.
const (
	Small = 1
	Large = 2
)
`,
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestTestFilesAndTestdataExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ok/ok.go": `// Package ok is documented.
package ok
`,
		"internal/ok/ok_test.go": `package ok

func Undocumented() {}
`,
		"internal/ok/testdata/frag.go": "package broken syntax here\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestBrokenMarkdownLink(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "A [dangling link](missing.md) here.\n",
	})
	code, out, _ := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	if !strings.Contains(out, "README.md:1: broken link missing.md") {
		t.Errorf("stdout = %q, want broken-link finding with file:line", out)
	}
}

func TestMarkdownSkipsFencesAnchorsAndSchemes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"NOTES.md": "```\n[inside fence](nope.md)\n```\n" +
			"[anchor](#section) [web](https://example.com/x.md) [mail](mailto:a@b.c)\n" +
			"[frag ok](REAL.md#part)\n",
		"REAL.md": "real\n",
	})
	code, out, errOut := runLint(t, root)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errOut)
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
