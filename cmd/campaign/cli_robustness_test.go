package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"latlab/internal/campaign"
)

// helperArgsEnv re-execs the test binary as the real CLI: TestMain
// dispatches to run() when it is set (args joined by the unit
// separator, which cannot appear in ours).
const helperArgsEnv = "CAMPAIGN_CLI_HELPER_ARGS"

func TestMain(m *testing.M) {
	if argv := os.Getenv(helperArgsEnv); argv != "" {
		os.Exit(run(strings.Split(argv, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// cli runs the CLI in-process and returns its exit code and stderr.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf strings.Builder
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// goldenCLILedger runs the mini campaign once and returns the ledger
// path and its bytes.
func goldenCLILedger(t *testing.T) (string, []byte) {
	t.Helper()
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	runCLI(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "4")
	data, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	return ledger, data
}

func TestRepairCLI(t *testing.T) {
	ledger, golden := goldenCLILedger(t)
	// Intact ledger: no-op, exit 0.
	if code, out, stderr := cli(t, "repair", "-ledger", ledger); code != exitOK || !strings.Contains(out, "intact") {
		t.Fatalf("repair intact: exit %d, out %q, err %q", code, out, stderr)
	}
	// Torn final append: truncated to the last valid record, exit 0.
	cut := len(golden) - 17
	if err := os.WriteFile(ledger, golden[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := cli(t, "repair", "-ledger", ledger)
	if code != exitOK || !strings.Contains(out, "dropped a torn final append") {
		t.Fatalf("repair torn: exit %d, out %q, err %q", code, out, stderr)
	}
	fixed, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	lastNL := bytes.LastIndexByte(golden[:cut], '\n')
	if !bytes.Equal(fixed, golden[:lastNL+1]) {
		t.Fatal("repair did not truncate to the last valid record")
	}
	// Mid-ledger corruption: refused with exit 4, file untouched.
	corrupt := append([]byte("garbage line\n"), fixed...)
	if err := os.WriteFile(ledger, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = cli(t, "repair", "-ledger", ledger)
	if code != exitCorrupt || !strings.Contains(stderr, "refusing") {
		t.Fatalf("repair corrupt: exit %d, err %q", code, stderr)
	}
	after, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, corrupt) {
		t.Fatal("refused repair still modified the ledger")
	}
}

// TestResumeCLIReconverges: truncate a ledger mid-append, repair it,
// resume it at a different worker count — the result must be
// byte-identical to the uninterrupted run.
func TestResumeCLIReconverges(t *testing.T) {
	ledger, golden := goldenCLILedger(t)
	// Tear mid-way through the ledger's 4th record.
	nl := 0
	cut := 0
	for i, b := range golden {
		if b == '\n' {
			if nl++; nl == 3 {
				cut = i + 1 + 20 // 20 bytes into record 4
				break
			}
		}
	}
	if err := os.WriteFile(ledger, golden[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	// Resume refuses the torn ledger outright, pointing at repair.
	if code, _, stderr := cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick"); code != exitCorrupt ||
		!strings.Contains(stderr, "repair") {
		t.Fatalf("resume on torn ledger: exit %d, err %q", code, stderr)
	}
	if code, _, stderr := cli(t, "repair", "-ledger", ledger); code != exitOK {
		t.Fatalf("repair: exit %d, err %q", code, stderr)
	}
	code, out, stderr := cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "3")
	if code != exitOK {
		t.Fatalf("resume: exit %d, err %q", code, stderr)
	}
	if !strings.Contains(out, "resuming") {
		t.Fatalf("resume output %q", out)
	}
	got, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("repaired+resumed ledger differs from the uninterrupted golden")
	}
	// Resuming a complete ledger is a no-op.
	code, out, _ = cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick")
	if code != exitOK || !strings.Contains(out, "nothing to resume") {
		t.Fatalf("resume complete: exit %d, out %q", code, out)
	}
}

// TestQuarantineCLI: an injected cell failure quarantines the cell
// (exit 2, sidecar written) while the rest of the campaign completes;
// a resume retries it with the same seeds and clears the sidecar.
func TestQuarantineCLI(t *testing.T) {
	_, golden := goldenCLILedger(t)
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	qPath := campaign.QuarantinePath(ledger)
	// Fail every attempt of one specific cell while attempts <= 1.
	t.Setenv("LATLAB_CAMPAIGN_INJECT", "fail=nt40/p200/5+4@1")
	code, _, stderr := cli(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "2")
	if code != exitQuarantined || !strings.Contains(stderr, "quarantined") {
		t.Fatalf("run with fault: exit %d, err %q", code, stderr)
	}
	entries, err := campaign.LoadQuarantine(qPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Attempts != 1 || entries[0].Cell() != "tiny-type/nt40/p200/5+4" {
		t.Fatalf("sidecar %+v", entries)
	}
	recs, err := campaign.ParseLedger(mustRead(t, ledger))
	if err != nil {
		t.Fatal(err)
	}
	goldenRecs, err := campaign.ParseLedger(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(goldenRecs)-1 {
		t.Fatalf("%d records with one quarantined cell, want %d", len(recs), len(goldenRecs)-1)
	}
	// Resume: global attempt 2 passes the @1 gate, so the cell retries
	// with its original seeds and its record is byte-identical to the
	// golden run's.
	code, _, stderr = cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-backoff", "0s")
	if code != exitOK {
		t.Fatalf("resume after quarantine: exit %d, err %q", code, stderr)
	}
	if _, err := os.Stat(qPath); !os.IsNotExist(err) {
		t.Fatal("successful resume must clear the quarantine sidecar")
	}
	recs, err = campaign.ParseLedger(mustRead(t, ledger))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(goldenRecs) {
		t.Fatalf("%d records after resume, want %d", len(recs), len(goldenRecs))
	}
	// The retried record (appended last) matches the golden bytes of the
	// same cell.
	last := recs[len(recs)-1]
	if last.Cell() != "tiny-type/nt40/p200/5+4" {
		t.Fatalf("last record is %s, want the retried cell", last.Cell())
	}
	wantLine, _ := campaign.MarshalRecord(goldenRecs[indexOfCell(t, goldenRecs, last.Cell())])
	gotLine, _ := campaign.MarshalRecord(last)
	if !bytes.Equal(wantLine, gotLine) {
		t.Fatal("retried cell's record differs from the uninterrupted run's")
	}
}

// TestQuarantineCLIBudgetExhausted: a permanently failing cell stays
// quarantined once its attempts reach the retry budget, and the resume
// still exits 2.
func TestQuarantineCLIBudgetExhausted(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	qPath := campaign.QuarantinePath(ledger)
	t.Setenv("LATLAB_CAMPAIGN_INJECT", "fail=nt40/p200/5+4")
	if code, _, _ := cli(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick"); code != exitQuarantined {
		t.Fatalf("run: exit %d", code)
	}
	// Two resumes: the first burns attempts 2..3 (budget 3, exit 2); the
	// second finds the cell out of budget and skips it (still exit 2).
	for i := 0; i < 2; i++ {
		code, _, stderr := cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-backoff", "0s")
		if code != exitQuarantined {
			t.Fatalf("resume %d: exit %d, err %q", i, code, stderr)
		}
	}
	entries, err := campaign.LoadQuarantine(qPath)
	if err != nil {
		t.Fatal(err)
	}
	latest := campaign.LatestQuarantine(entries)
	if q, ok := latest["tiny-type/nt40/p200/5+4"]; !ok || q.Attempts != 3 {
		t.Fatalf("sidecar %+v, want the cell at 3 attempts", latest)
	}
}

// TestEmitSpecCLIRoundTrip: analyze -emit-spec writes a spec the CLI
// can run, closing the refine loop end to end.
func TestEmitSpecCLIRoundTrip(t *testing.T) {
	ledger, _ := goldenCLILedger(t)
	next := filepath.Join(t.TempDir(), "next.json")
	code, out, stderr := cli(t, "analyze", "-ledger", ledger, "-emit-spec", next, "-spec", "testdata/mini.json")
	if code != exitOK || !strings.Contains(out, "suggested spec") {
		t.Fatalf("analyze -emit-spec: exit %d, out %q, err %q", code, out, stderr)
	}
	nextLedger := filepath.Join(t.TempDir(), "next-ledger.jsonl")
	if code, _, stderr := cli(t, "run", "-spec", next, "-ledger", nextLedger, "-quick"); code != exitOK {
		t.Fatalf("run emitted spec: exit %d, err %q", code, stderr)
	}
	if code, _, stderr := cli(t, "analyze", "-ledger", nextLedger); code != exitOK {
		t.Fatalf("analyze emitted ledger: exit %d, err %q", code, stderr)
	}
}

// TestSignalInterruptLeavesResumableLedger drives the real binary:
// SIGINT mid-campaign must drain, fsync a clean prefix, exit 3, and
// the ledger must resume to the byte-identical golden.
func TestSignalInterruptLeavesResumableLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	_, golden := goldenCLILedger(t)
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	args := strings.Join([]string{"run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "2"}, "\x1f")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperArgsEnv+"="+args,
		// Slow every cell down so the interrupt lands mid-campaign.
		"LATLAB_CAMPAIGN_INJECT=sleep=150ms")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	if code != exitOK && code != exitInterrupted {
		t.Fatalf("interrupted run: exit %d (stderr: %s)", code, stderr.String())
	}
	if code == exitInterrupted && !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("no draining message on stderr: %s", stderr.String())
	}
	// The drained ledger is a clean byte prefix of the golden ledger.
	partial := mustRead(t, ledger)
	if !bytes.HasPrefix(golden, partial) {
		t.Fatal("interrupted ledger is not a byte prefix of the golden ledger")
	}
	// Repair is a no-op on a cleanly drained ledger; resume reconverges.
	if code, _, stderr := cli(t, "repair", "-ledger", ledger); code != exitOK {
		t.Fatalf("repair: exit %d, err %q", code, stderr)
	}
	if len(partial) < len(golden) {
		if code, _, stderr := cli(t, "resume", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "3"); code != exitOK {
			t.Fatalf("resume: exit %d, err %q", code, stderr)
		}
	}
	if got := mustRead(t, ledger); !bytes.Equal(got, golden) {
		t.Fatal("interrupt + resume did not reconverge to the golden ledger")
	}
}

// mustRead reads a file or fails the test.
func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// indexOfCell finds the record with the given cell id.
func indexOfCell(t *testing.T, recs []campaign.Record, cell string) int {
	t.Helper()
	for i, r := range recs {
		if r.Cell() == cell {
			return i
		}
	}
	t.Fatalf("cell %s not found", cell)
	return -1
}
