// Command campaign runs population-scale latency campaigns and
// analyzes their ledgers.
//
// A campaign spec (see README "Campaigns") sweeps personas × machines ×
// scenarios over a seed range; `campaign run` expands the cube into
// cells, shards them across a worker pool, folds every session's event
// latencies into streaming sketches, and appends one record per cell to
// a JSONL ledger. The ledger — and everything derived from it — is
// byte-identical for any -jobs value. `campaign analyze` replays a
// ledger: it ranks configurations by tail latency and jitter, renders a
// KPI table, and suggests refined follow-up cells.
//
// Usage:
//
//	campaign run -spec spec.json -ledger out.jsonl [-quick] [-jobs N] [-timeout D]
//	campaign analyze -ledger out.jsonl [-out report.txt]
//
// run appends: an existing ledger is re-parsed first (so a corrupt or
// truncated file is never extended) and new records land after the old
// ones. analyze reads the whole ledger strictly and fails loudly on any
// malformed record.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"latlab/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; it is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runCampaign(args[1:], stdout, stderr)
	case "analyze":
		return runAnalyze(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "campaign: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// usage prints the top-level help.
func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  campaign run -spec spec.json -ledger out.jsonl [-quick] [-jobs N] [-timeout D]
  campaign analyze -ledger out.jsonl [-out report.txt]

run expands a campaign spec (personas x machines x scenarios x seeds)
into cells, executes every seeded session, and appends one sketch
record per cell to the JSONL ledger. The ledger is byte-identical for
any -jobs value.

analyze replays a ledger: merges each configuration's cells, ranks
configurations by p95 (ties: p50, jitter), renders a KPI table, and
suggests refined follow-up cells for the worst p99 and jitter.
`)
}

// runCampaign implements `campaign run`.
func runCampaign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "campaign spec file (required)")
		ledgerPath = fs.String("ledger", "", "JSONL ledger to append to (required)")
		quick      = fs.Bool("quick", false, "trim workload sizes (for smoke runs)")
		jobs       = fs.Int("jobs", runtime.NumCPU(), "run up to N cells concurrently")
		timeout    = fs.Duration("timeout", 0, "per-cell timeout (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *ledgerPath == "" {
		fmt.Fprintln(stderr, "campaign run: -spec and -ledger are required")
		return 2
	}
	c, err := campaign.LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Refuse to extend a ledger we could not replay: append-only is only
	// safe if what is already there is intact.
	if existing, err := os.ReadFile(*ledgerPath); err == nil {
		if _, err := campaign.ParseLedger(existing); err != nil {
			fmt.Fprintf(stderr, "campaign run: existing ledger %s: %v\n", *ledgerPath, err)
			return 1
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.OpenFile(*ledgerPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	bw := bufio.NewWriter(f)
	sum, runErr := campaign.Run(context.Background(), c,
		campaign.Options{Jobs: *jobs, Quick: *quick, Timeout: *timeout},
		func(r campaign.Record) error { return campaign.AppendRecord(bw, r) })
	if err := bw.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	if err := f.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(stderr, runErr)
		return 1
	}
	fmt.Fprintf(stdout, "campaign %s: %d cells, %d sessions, %d events -> %s\n",
		c.Spec.ID, sum.Cells, sum.Sessions, sum.Events, *ledgerPath)
	return 0
}

// runAnalyze implements `campaign analyze`.
func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ledgerPath = fs.String("ledger", "", "JSONL ledger to analyze (required)")
		outPath    = fs.String("out", "", "write the report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ledgerPath == "" {
		fmt.Fprintln(stderr, "campaign analyze: -ledger is required")
		return 2
	}
	data, err := os.ReadFile(*ledgerPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	records, err := campaign.ParseLedger(data)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	a, err := campaign.Analyze(records)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	w := io.Writer(stdout)
	var f *os.File
	if *outPath != "" {
		f, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		w = f
	}
	renderErr := a.Render(w)
	if f != nil {
		if err := f.Close(); err != nil && renderErr == nil {
			renderErr = err
		}
	}
	if renderErr != nil {
		fmt.Fprintln(stderr, renderErr)
		return 1
	}
	return 0
}
