// Command campaign runs population-scale latency campaigns and
// analyzes their ledgers, surviving everything short of disk loss.
//
// A campaign spec (see README "Campaigns") sweeps personas × machines ×
// scenarios over a seed range; `campaign run` expands the cube into
// cells, shards them across a worker pool, folds every session's event
// latencies into streaming sketches, and appends one record per cell to
// a JSONL ledger. The ledger — and everything derived from it — is
// byte-identical for any -jobs value.
//
// Crash safety: a cell whose sessions fail is quarantined in a sidecar
// (<ledger minus .jsonl>.quarantine.jsonl) while the run completes the
// remaining cells; SIGINT/SIGTERM drains in-flight cells, flushes and
// fsyncs every completed record, and exits 3 (resumable) — a second
// signal aborts immediately. `campaign resume` set-differences the
// spec's cells against the ledger and runs only the remainder, in
// canonical order, retrying quarantined cells with the same seeds under
// a bounded backoff budget: an interrupted run plus a resume produces a
// ledger byte-identical to an uninterrupted run. `campaign repair`
// salvages the one legal corruption shape — a torn final append — by
// truncating to the last valid record; it refuses anything else.
//
// `campaign analyze` replays a ledger: it ranks configurations by tail
// latency and jitter, renders a KPI table, suggests refined follow-up
// cells, and with -emit-spec writes those suggestions as a runnable
// follow-up spec.
//
// Crash injection (testing): the LATLAB_CAMPAIGN_INJECT environment
// variable accepts comma-separated directives — `sleep=50ms` delays
// every cell attempt, `fail=SUBSTR` fails every attempt of cells whose
// id contains SUBSTR, `fail=SUBSTR@N` fails only while the cell's
// global attempt number is ≤ N — so CI can fault or slow specific
// cells deterministically through the real binary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"latlab/internal/campaign"
	"latlab/internal/kernel"
)

// Exit codes, so agents and CI can branch on outcome without parsing
// stderr (documented in -h).
const (
	exitOK          = 0 // success
	exitUsage       = 1 // usage or configuration error
	exitQuarantined = 2 // run completed but cells failed and were quarantined
	exitInterrupted = 3 // interrupted; ledger is a clean resumable prefix
	exitCorrupt     = 4 // ledger (or quarantine sidecar) corruption
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; it is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return exitUsage
	}
	switch args[0] {
	case "run":
		return runCampaign(args[1:], stdout, stderr, false)
	case "resume":
		return runCampaign(args[1:], stdout, stderr, true)
	case "analyze":
		return runAnalyze(args[1:], stdout, stderr)
	case "repair":
		return runRepair(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return exitOK
	default:
		fmt.Fprintf(stderr, "campaign: unknown subcommand %q\n", args[0])
		usage(stderr)
		return exitUsage
	}
}

// usage prints the top-level help.
func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  campaign run     -spec spec.json -ledger out.jsonl [-quick] [-jobs N] [-timeout D]
                   [-engine batched|reference] [-batch N]
  campaign resume  -spec spec.json -ledger out.jsonl [-quick] [-jobs N] [-timeout D]
                   [-engine batched|reference] [-batch N]
                   [-retry-budget N] [-backoff D]
  campaign analyze -ledger out.jsonl [-out report.txt]
                   [-emit-spec next.json -spec spec.json]
  campaign repair  -ledger out.jsonl

run expands a campaign spec (personas x machines x scenarios x seeds)
into cells, executes every seeded session, and appends one sketch
record per cell to the JSONL ledger. The ledger is byte-identical for
any -jobs, -engine, and -batch value: the batched engine (calendar
event queue, analytic idle skipping, -batch machines stepped per
worker) is a pure throughput knob, never a semantics knob. A failing cell is quarantined (recorded in
<ledger>.quarantine.jsonl) while the rest of the campaign completes;
SIGINT/SIGTERM drains in-flight cells, fsyncs the ledger, and leaves a
resumable prefix.

resume runs only the cells the ledger does not already hold, appending
in canonical order — an interrupted run plus a resume reproduces the
uninterrupted ledger byte for byte. Quarantined cells are retried with
the same seeds, with exponential -backoff between attempts, until each
cell's total attempts reach -retry-budget.

analyze replays a ledger: merges each configuration's cells, ranks
configurations by p95 (ties: p50, jitter), renders a KPI table, and
suggests refined follow-up cells; -emit-spec writes the suggestions as
a runnable campaign spec (needs -spec to resolve scenario paths).

repair salvages a ledger whose final append was torn (e.g. by a crash
mid-write): it truncates to the last valid record and reports exactly
what was dropped. Any other corruption is refused.

exit codes:
  0  success
  1  usage or configuration error
  2  completed, but some cells failed and were quarantined; retry them
     with 'campaign resume'
  3  interrupted — the ledger is a clean, resumable prefix; continue
     with 'campaign resume'
  4  ledger corruption — a torn final append is fixable with
     'campaign repair', anything else is not
`)
}

// planErr marks ledger-scan failures that are semantic mismatches
// (wrong campaign, duplicate cell, changed spec) rather than file
// corruption, so they exit 1 instead of 4.
type planErr struct{ err error }

// Error implements error.
func (e planErr) Error() string { return e.err.Error() }

// runCampaign implements `campaign run` (resume=false) and `campaign
// resume` (resume=true); the two share everything but cell selection
// and the retry budget.
func runCampaign(args []string, stdout, stderr io.Writer, resume bool) int {
	name := "campaign run"
	if resume {
		name = "campaign resume"
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "campaign spec file (required)")
		ledgerPath = fs.String("ledger", "", "JSONL ledger to append to (required)")
		quick      = fs.Bool("quick", false, "trim workload sizes (for smoke runs)")
		jobs       = fs.Int("jobs", runtime.NumCPU(), "run up to N cells concurrently")
		timeout    = fs.Duration("timeout", 0, "per-cell timeout, retries included (0 = none)")
		engine     = fs.String("engine", "batched", "simulation engine: batched or reference (byte-identical ledgers)")
		batch      = fs.Int("batch", 8, "machines stepped per worker as one batch (1 = sequential)")
	)
	budget, backoff := new(int), new(time.Duration)
	if resume {
		budget = fs.Int("retry-budget", 3, "max total attempts per quarantined cell")
		backoff = fs.Duration("backoff", time.Second, "base delay between retry attempts (doubles per attempt)")
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *specPath == "" || *ledgerPath == "" {
		fmt.Fprintf(stderr, "%s: -spec and -ledger are required\n", name)
		return exitUsage
	}
	var eng kernel.Engine
	switch *engine {
	case "batched":
		eng = kernel.BatchedEngine()
	case "reference":
		eng = kernel.Engine{}
	default:
		fmt.Fprintf(stderr, "%s: -engine must be batched or reference, got %q\n", name, *engine)
		return exitUsage
	}
	if *batch < 1 {
		fmt.Fprintf(stderr, "%s: -batch must be >= 1, got %d\n", name, *batch)
		return exitUsage
	}
	c, err := campaign.LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	inject, err := injectFromEnv()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}

	// Refuse to extend a ledger we could not replay: append-only is only
	// safe if what is already there is intact. The scan streams — the
	// ledger is never held in memory — and resume feeds the same pass
	// into its planner instead of re-reading the file.
	plan := campaign.NewResume(c, *quick, campaign.Options{}.SketchAlpha())
	existing := 0
	if lf, err := os.Open(*ledgerPath); err == nil {
		scanErr := campaign.ScanLedger(lf, func(rec campaign.Record) error {
			existing++
			if resume {
				if err := plan.Observe(rec); err != nil {
					return planErr{err}
				}
			}
			return nil
		})
		lf.Close()
		if scanErr != nil {
			fmt.Fprintf(stderr, "%s: existing ledger %s: %v\n", name, *ledgerPath, scanErr)
			if errors.As(scanErr, &planErr{}) {
				return exitUsage
			}
			fmt.Fprintf(stderr, "%s: if the final append was torn, `campaign repair -ledger %s` can salvage it\n", name, *ledgerPath)
			return exitCorrupt
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}

	// Quarantine sidecar: resume consults it for retry budgets; both
	// modes append newly failed cells to it as they happen.
	qPath := campaign.QuarantinePath(*ledgerPath)
	prior := map[string]campaign.Quarantine{}
	if entries, err := campaign.LoadQuarantine(qPath); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return exitCorrupt
	} else {
		for _, q := range entries {
			if q.Campaign != c.Spec.ID {
				fmt.Fprintf(stderr, "%s: quarantine file %s holds campaign %q, not %q\n", name, qPath, q.Campaign, c.Spec.ID)
				return exitUsage
			}
		}
		prior = campaign.LatestQuarantine(entries)
	}

	// Cell selection: run executes the full expansion (appending), resume
	// only the set-difference, skipping quarantined cells that are out of
	// retry budget.
	cells := campaign.Cells(c)
	var skipped []campaign.Quarantine
	priorAttempts := map[string]int{}
	if resume {
		cells, skipped = plan.Missing(prior, *budget)
		for id, q := range prior {
			priorAttempts[id] = q.Attempts
		}
		if len(cells) == 0 && len(skipped) == 0 {
			fmt.Fprintf(stdout, "campaign %s: ledger already complete (%d cells); nothing to resume\n", c.Spec.ID, existing)
			return exitOK
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops feeding new
	// cells and lets in-flight ones drain through the reorder buffer; a
	// second aborts in place. Either way the appended records stay a
	// clean prefix and the exit code says "resumable".
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sigc:
		case <-done:
			return
		}
		fmt.Fprintln(stderr, "campaign: interrupted — draining in-flight cells (interrupt again to abort)")
		close(drain)
		select {
		case <-sigc:
		case <-done:
			return
		}
		fmt.Fprintln(stderr, "campaign: aborting")
		cancel()
	}()

	lf, err := os.OpenFile(*ledgerPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	var qf *os.File // opened on first quarantined cell
	closeAll := func() {
		lf.Close()
		if qf != nil {
			qf.Close()
		}
	}

	sum, runErr := campaign.RunCells(ctx, c, cells,
		campaign.Options{
			Jobs:          *jobs,
			Quick:         *quick,
			Timeout:       *timeout,
			RetryBudget:   *budget,
			Backoff:       *backoff,
			PriorAttempts: priorAttempts,
			Drain:         drain,
			Inject:        inject,
			Engine:        eng,
			Batch:         *batch,
			OnQuarantine: func(q campaign.Quarantine) error {
				if qf == nil {
					var err error
					qf, err = os.OpenFile(qPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
					if err != nil {
						return err
					}
				}
				if err := campaign.AppendQuarantine(qf, q); err != nil {
					return err
				}
				return qf.Sync()
			},
		},
		// One write syscall per record, synced at the end (and on
		// interruption): a crash can tear at most the final append, which
		// `campaign repair` salvages.
		func(r campaign.Record) error { return campaign.AppendRecord(lf, r) })
	if err := lf.Sync(); err != nil && runErr == nil {
		runErr = err
	}

	interrupted := sum.Interrupted || errors.Is(runErr, context.Canceled)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		closeAll()
		fmt.Fprintln(stderr, runErr)
		return exitUsage
	}

	// Compact the quarantine sidecar once the outcome is settled: the
	// still-quarantined set is the out-of-budget skips plus this run's
	// failures, in expansion order. An interrupted run skips compaction —
	// its append-only entries keep the attempt counts crash-safe.
	quarantined := len(sum.Quarantined) + len(skipped)
	if !interrupted {
		byCell := map[string]campaign.Quarantine{}
		for _, q := range skipped {
			byCell[q.Cell()] = q
		}
		for _, q := range sum.Quarantined {
			byCell[q.Cell()] = q
		}
		var final []campaign.Quarantine
		for _, cell := range campaign.Cells(c) {
			if q, ok := byCell[cell.ID()]; ok {
				final = append(final, q)
			}
		}
		if err := campaign.WriteQuarantine(qPath, final); err != nil {
			closeAll()
			fmt.Fprintln(stderr, err)
			return exitUsage
		}
	}
	closeAll()

	verb := "run"
	if resume {
		verb = "resume"
		fmt.Fprintf(stdout, "campaign %s: resuming %d of %d cells (%d already in ledger, %d out of retry budget)\n",
			c.Spec.ID, len(cells), len(campaign.Cells(c)), existing, len(skipped))
	}
	fmt.Fprintf(stdout, "campaign %s: %d cells, %d sessions, %d events -> %s\n",
		c.Spec.ID, sum.Cells, sum.Sessions, sum.Events, *ledgerPath)
	if interrupted {
		fmt.Fprintf(stderr, "campaign %s: interrupted after %d of %d cells; ledger is a clean prefix — continue with `campaign resume`\n",
			c.Spec.ID, sum.Cells, sum.Planned)
		return exitInterrupted
	}
	if quarantined > 0 {
		fmt.Fprintf(stderr, "campaign %s: %s completed with %d cells quarantined (%s); retry with `campaign resume`\n",
			c.Spec.ID, verb, quarantined, qPath)
		return exitQuarantined
	}
	return exitOK
}

// runAnalyze implements `campaign analyze`.
func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ledgerPath = fs.String("ledger", "", "JSONL ledger to analyze (required)")
		outPath    = fs.String("out", "", "write the report to this file instead of stdout")
		emitSpec   = fs.String("emit-spec", "", "write suggested_next as a runnable campaign spec to this file")
		specPath   = fs.String("spec", "", "original campaign spec (required by -emit-spec, to resolve scenario paths)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *ledgerPath == "" {
		fmt.Fprintln(stderr, "campaign analyze: -ledger is required")
		return exitUsage
	}
	if *emitSpec != "" && *specPath == "" {
		fmt.Fprintln(stderr, "campaign analyze: -emit-spec needs -spec to resolve scenario paths")
		return exitUsage
	}
	f, err := os.Open(*ledgerPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	// Stream the ledger line-at-a-time; only the parsed records are
	// retained, never the file bytes.
	var records []campaign.Record
	scanErr := campaign.ScanLedger(f, func(r campaign.Record) error {
		records = append(records, r)
		return nil
	})
	f.Close()
	if scanErr != nil {
		fmt.Fprintln(stderr, scanErr)
		fmt.Fprintf(stderr, "campaign analyze: if the final append was torn, `campaign repair -ledger %s` can salvage it\n", *ledgerPath)
		return exitCorrupt
	}
	a, err := campaign.Analyze(records)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	w := io.Writer(stdout)
	var out *os.File
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitUsage
		}
		w = out
	}
	renderErr := a.Render(w)
	if out != nil {
		if err := out.Close(); err != nil && renderErr == nil {
			renderErr = err
		}
	}
	if renderErr != nil {
		fmt.Fprintln(stderr, renderErr)
		return exitUsage
	}
	if *emitSpec != "" {
		if err := writeNextSpec(a, *specPath, *emitSpec); err != nil {
			fmt.Fprintln(stderr, err)
			return exitUsage
		}
		fmt.Fprintf(stdout, "suggested spec (%d cells) -> %s\n", len(a.SuggestedNext), *emitSpec)
	}
	return exitOK
}

// writeNextSpec renders the analysis's suggested cells as a runnable
// spec at outPath, resolving each scenario id to a path relative to
// the emitted file via the original spec.
func writeNextSpec(a *campaign.Analysis, specPath, outPath string) error {
	c, err := campaign.LoadSpec(specPath)
	if err != nil {
		return err
	}
	outDir, err := filepath.Abs(filepath.Dir(outPath))
	if err != nil {
		return err
	}
	specDir, err := filepath.Abs(filepath.Dir(specPath))
	if err != nil {
		return err
	}
	paths := map[string]string{}
	for i, doc := range c.Docs {
		rel, err := filepath.Rel(outDir, filepath.Join(specDir, c.Spec.Scenarios[i]))
		if err != nil {
			return err
		}
		paths[doc.ID] = filepath.ToSlash(rel)
	}
	next, err := a.NextSpec(paths)
	if err != nil {
		return err
	}
	data, err := campaign.MarshalSpec(next)
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// runRepair implements `campaign repair`: salvage a torn final append
// by truncating the ledger to its last valid record.
func runRepair(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign repair", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledgerPath := fs.String("ledger", "", "JSONL ledger to repair (required)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *ledgerPath == "" {
		fmt.Fprintln(stderr, "campaign repair: -ledger is required")
		return exitUsage
	}
	f, err := os.OpenFile(*ledgerPath, os.O_RDWR, 0)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	defer f.Close()
	s, err := campaign.SalvageLedger(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		fmt.Fprintln(stderr, "campaign repair: this is not a torn final append; refusing to touch the ledger")
		return exitCorrupt
	}
	if s.Tail == nil {
		fmt.Fprintf(stdout, "campaign repair: %s is intact (%d records); nothing to do\n", *ledgerPath, s.Records)
		return exitOK
	}
	if err := f.Truncate(s.ValidBytes); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	if err := f.Sync(); err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	fmt.Fprintf(stdout, "campaign repair: %s: dropped a torn final append (%d bytes, %s) after %d valid records; resume with `campaign resume`\n",
		*ledgerPath, len(s.Tail), peek(s.Tail), s.Records)
	return exitOK
}

// peek renders the head of a torn tail for the repair report.
func peek(b []byte) string {
	const n = 40
	if len(b) <= n {
		return strconv.Quote(string(b))
	}
	return strconv.Quote(string(b[:n])) + "…"
}

// injectFromEnv builds the crash-injection hook from
// LATLAB_CAMPAIGN_INJECT (see the package comment for the grammar);
// an empty variable means no hook.
func injectFromEnv() (func(context.Context, campaign.Cell, int) error, error) {
	val := os.Getenv("LATLAB_CAMPAIGN_INJECT")
	if val == "" {
		return nil, nil
	}
	var sleep time.Duration
	var failSub string
	failUntil := -1 // -1: always fail matching cells
	for _, dir := range strings.Split(val, ",") {
		key, arg, ok := strings.Cut(dir, "=")
		if !ok {
			return nil, fmt.Errorf("campaign: LATLAB_CAMPAIGN_INJECT directive %q is not key=value", dir)
		}
		switch key {
		case "sleep":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("campaign: LATLAB_CAMPAIGN_INJECT sleep: %w", err)
			}
			sleep = d
		case "fail":
			failSub = arg
			if sub, n, ok := strings.Cut(arg, "@"); ok {
				cnt, err := strconv.Atoi(n)
				if err != nil {
					return nil, fmt.Errorf("campaign: LATLAB_CAMPAIGN_INJECT fail@: %w", err)
				}
				failSub, failUntil = sub, cnt
			}
		default:
			return nil, fmt.Errorf("campaign: LATLAB_CAMPAIGN_INJECT: unknown directive %q (want sleep= or fail=)", key)
		}
	}
	return func(ctx context.Context, cell campaign.Cell, attempt int) error {
		if sleep > 0 {
			t := time.NewTimer(sleep)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if failSub != "" && strings.Contains(cell.ID(), failSub) {
			if failUntil < 0 || attempt <= failUntil {
				return fmt.Errorf("injected failure (LATLAB_CAMPAIGN_INJECT, attempt %d)", attempt)
			}
		}
		return nil
	}, nil
}
