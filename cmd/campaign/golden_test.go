package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// -update regenerates the golden files instead of comparing:
//
//	go test ./cmd/campaign -update
var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// TestAnalyzeGolden locks the analyze report of the mini campaign byte
// for byte: the KPI table, the ranking, and the suggested_next cells.
// The engine is deterministic by construction, so any diff here is a
// behaviour change in the simulator, the sketch, or the analyzer.
func TestAnalyzeGolden(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	runCLI(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "3")
	report := runCLI(t, "analyze", "-ledger", ledger)

	path := filepath.Join("testdata", "golden", "mini-analyze.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/campaign -update`): %v", err)
	}
	if !bytes.Equal(want, []byte(report)) {
		t.Fatalf("analyze output differs from %s (lens %d vs %d):\n%s",
			path, len(want), len(report), firstDiff(want, []byte(report)))
	}
}

// firstDiff renders the first divergent line of two byte slices so a
// golden failure is actionable without an external diff tool.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "line " + strconv.Itoa(n+1) + ": one output is a prefix of the other"
}
