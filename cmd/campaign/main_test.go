package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// runCLI invokes the campaign CLI in-process, failing the test on a
// non-zero exit.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out, errBuf strings.Builder
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("campaign %s: exit %d: %s", strings.Join(args, " "), code, errBuf.String())
	}
	return out.String()
}

// runMini executes the mini campaign through the CLI at the given
// worker count and returns the ledger bytes and the analyze report.
func runMini(t *testing.T, jobs int) ([]byte, string) {
	t.Helper()
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	runCLI(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger,
		"-quick", "-jobs", strconv.Itoa(jobs))
	data, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	return data, runCLI(t, "analyze", "-ledger", ledger)
}

// TestCrossShardDeterminism is the end-to-end determinism gate: same
// spec and seeds at -jobs 1, 4, and 8 must produce a byte-identical
// ledger and a byte-identical analyze report.
func TestCrossShardDeterminism(t *testing.T) {
	baseLedger, baseReport := runMini(t, 1)
	for _, jobs := range []int{4, 8} {
		ledger, report := runMini(t, jobs)
		if !bytes.Equal(baseLedger, ledger) {
			t.Errorf("ledger differs between -jobs 1 and -jobs %d", jobs)
		}
		if baseReport != report {
			t.Errorf("analyze report differs between -jobs 1 and -jobs %d", jobs)
		}
	}
}

// TestRunAppendsToExistingLedger proves append-only semantics: a
// second run lands after the first, and analyze rejects the duplicate
// cells rather than silently double-counting.
func TestRunAppendsToExistingLedger(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	runCLI(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "2")
	first, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	runCLI(t, "run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick", "-jobs", "2")
	both, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(both, append(append([]byte{}, first...), first...)) {
		t.Fatal("second run did not append the same records after the first")
	}
	var out, errBuf strings.Builder
	if code := run([]string{"analyze", "-ledger", ledger}, &out, &errBuf); code == 0 {
		t.Fatal("analyze must reject duplicate cells")
	} else if !strings.Contains(errBuf.String(), "duplicate") {
		t.Fatalf("analyze error %q does not mention duplicate cells", errBuf.String())
	}
}

// TestRunRefusesCorruptLedger: an unreadable existing ledger must stop
// the run before any session executes.
func TestRunRefusesCorruptLedger(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(ledger, []byte(`{"schema":1`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf strings.Builder
	if code := run([]string{"run", "-spec", "testdata/mini.json", "-ledger", ledger, "-quick"}, &out, &errBuf); code != exitCorrupt {
		t.Fatalf("run on a corrupt ledger: exit %d, want %d", code, exitCorrupt)
	}
	data, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"schema":1` {
		t.Fatal("refused run still modified the ledger")
	}
}

func TestCLIUsageAndErrors(t *testing.T) {
	cases := []struct {
		args []string
		code int
	}{
		{nil, exitUsage},
		{[]string{"bogus"}, exitUsage},
		{[]string{"run"}, exitUsage},
		{[]string{"analyze"}, exitUsage},
		{[]string{"repair"}, exitUsage},
		{[]string{"resume"}, exitUsage},
		{[]string{"run", "-spec", "testdata/mini.json"}, exitUsage},
		{[]string{"analyze", "-ledger", "testdata/does-not-exist.jsonl"}, exitUsage},
		{[]string{"analyze", "-ledger", "x.jsonl", "-emit-spec", "y.json"}, exitUsage},
		{[]string{"help"}, 0},
	}
	for _, tc := range cases {
		var out, errBuf strings.Builder
		if code := run(tc.args, &out, &errBuf); code != tc.code {
			t.Errorf("campaign %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.code, errBuf.String())
		}
	}
}
