// Command idleprof explores the idle-loop instrument interactively: it
// boots a persona, runs the idle loop for a configurable span with an
// optional synthetic foreground burst, and prints the utilization
// profile plus summary statistics, optionally exporting the raw sample
// trace as CSV for cmd/traceview.
//
// Usage:
//
//	idleprof -persona nt40 -seconds 2 -burst-ms 30 -burst-at-ms 500
//	idleprof -persona w95 -machine p200 -csv samples.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
	"latlab/internal/trace"
	"latlab/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("idleprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		personaName = fs.String("persona", "nt40", "persona: nt351, nt40, or w95")
		machineID   = fs.String("machine", "p100", "hardware profile to boot on")
		seconds     = fs.Float64("seconds", 2, "simulated run length")
		burstMs     = fs.Float64("burst-ms", 0, "inject a foreground CPU burst of this length")
		burstAtMs   = fs.Float64("burst-at-ms", 500, "burst start time")
		bucketMs    = fs.Float64("bucket-ms", 10, "averaging bucket for the profile (0 = full resolution)")
		csvPath     = fs.String("csv", "", "also write the raw idle samples to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, ok := persona.ByShort(*personaName)
	if !ok {
		fmt.Fprintf(stderr, "idleprof: unknown persona %q (nt351, nt40, w95)\n", *personaName)
		return 1
	}
	prof, ok := machine.ByShort(*machineID)
	if !ok {
		fmt.Fprintf(stderr, "idleprof: unknown machine %q (valid: %s)\n",
			*machineID, strings.Join(machine.Shorts(), ", "))
		return 1
	}
	if *seconds <= 0 || *seconds > 600 {
		fmt.Fprintf(stderr, "idleprof: -seconds must be in (0, 600]\n")
		return 1
	}

	sys := system.New(system.Config{Persona: p, Machine: prof})
	defer sys.Shutdown()
	il := core.StartIdleLoop(sys.K, int(*seconds*1100)+1000)

	if *burstMs > 0 {
		// Burst length is wall time, so the cycle count scales with the
		// machine's clock.
		burstCycles := int64(*burstMs / 1000 * float64(sys.K.CPU().Freq))
		app := sys.K.Spawn("burst", 1, system.AppPrio, func(tc *kernel.TC) {
			tc.GetMessage()
			tc.Compute(cpu.Segment{Name: "burst", BaseCycles: burstCycles})
		})
		sys.K.At(simtime.Time(simtime.FromMillis(*burstAtMs)), func(simtime.Time) {
			sys.K.PostMessage(app, kernel.WMCommand, 0)
		})
	}

	sys.K.Run(simtime.Time(simtime.FromSeconds(*seconds)))

	samples := il.Samples()
	var pts []core.ProfilePoint
	if *bucketMs > 0 {
		pts = core.AveragedProfile(samples, simtime.FromMillis(*bucketMs))
	} else {
		pts = core.Profile(samples)
	}
	title := fmt.Sprintf("%s — %d idle samples over %.1fs (mean util %.3f%%)",
		p.Name, len(samples), *seconds, 100*core.MeanUtil(pts))
	if err := viz.Profile(stdout, title, pts, 110, 12); err != nil {
		fmt.Fprintln(stderr, "idleprof:", err)
		return 1
	}

	var stolen simtime.Duration
	for _, s := range samples {
		stolen += s.Stolen(core.NominalSample)
	}
	fmt.Fprintf(stdout, "\ntotal non-idle time observed: %v (ground truth %v)\n",
		stolen, sys.K.NonIdleBusyTime())
	fmt.Fprintf(stdout, "clock interrupts taken: %d\n", sys.K.ClockTicks())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(stderr, "idleprof:", err)
			return 1
		}
		defer f.Close()
		if err := trace.WriteIdleCSV(f, samples); err != nil {
			fmt.Fprintln(stderr, "idleprof:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d samples to %s\n", len(samples), *csvPath)
	}
	return 0
}
