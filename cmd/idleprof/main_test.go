package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestIdleProfile(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-persona", "nt40", "-seconds", "0.5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "Windows NT 4.0") || !strings.Contains(got, "idle samples") {
		t.Fatalf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "clock interrupts taken: 50") {
		t.Fatalf("clock count missing:\n%s", got)
	}
}

func TestBurstAndCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "samples.csv")
	var out, errBuf strings.Builder
	code := run([]string{"-persona", "w95", "-seconds", "1",
		"-burst-ms", "30", "-burst-at-ms", "200", "-csv", csv}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("csv confirmation missing")
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "done_ms,elapsed_ms") {
		t.Fatalf("csv header wrong")
	}
	// The 30 ms burst must show in the observed non-idle time.
	if !strings.Contains(out.String(), "total non-idle time observed") {
		t.Fatalf("summary missing")
	}
}

func TestBadArgs(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-persona", "beos"}, &out, &errBuf); code != 1 {
		t.Fatalf("unknown persona: exit %d", code)
	}
	if code := run([]string{"-seconds", "0"}, &out, &errBuf); code != 1 {
		t.Fatalf("zero seconds: exit %d", code)
	}
	if code := run([]string{"-nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{"-seconds", "0.3", "-csv", filepath.Join(t.TempDir(), "no", "dir", "x.csv")}, &out, &errBuf); code != 1 {
		t.Fatalf("bad csv path: exit %d", code)
	}
}
